//! Shared rig for the goal-directed experiments of Section 5.
//!
//! The workload is the one Section 5.2 describes: the composite
//! application (speech → web → map) started every 25 seconds, running
//! concurrently with the adaptive background video player. Applications
//! are prioritized "with Speech having the lowest priority, and Video,
//! Map, and Web having successively higher priority". The machine runs
//! from a finite battery; the [`odyssey::GoalController`] observes power
//! through the on-line meter and issues upcalls until the goal is reached
//! or the supply is exhausted.

use hw560x::EnergySource;
use machine::{FaultConfig, Machine, MachineConfig, RunReport, Workload as _};
use odyssey::goal::MONITOR_OVERHEAD_W;
use odyssey::{GoalConfig, GoalController, GoalOutcome, PriorityTable};
use odyssey_apps::bursty::{BurstyMember, BurstyRole};
use odyssey_apps::composite::{composite_members, CompositeMode};
use odyssey_apps::datasets::VIDEO_CLIPS;
use odyssey_apps::VideoPlayer;
use simcore::{SimDuration, SimRng, SimTime, TimeSeries};

/// Everything an experiment needs from one goal-directed run.
#[derive(Clone, Debug)]
pub struct GoalRun {
    /// Controller outcome (goal met, adaptation counts).
    pub outcome: GoalOutcome,
    /// Machine report (energy, fidelity series, residual).
    pub report: RunReport,
    /// Residual-energy trace.
    pub supply: TimeSeries,
    /// Predicted-demand trace.
    pub demand: TimeSeries,
}

impl GoalRun {
    /// Number of fidelity changes a workload performed.
    pub fn adaptations_of(&self, name: &str) -> usize {
        self.report.adaptations_of(name)
    }
}

/// The safety-net horizon the composite rig uses for a given goal.
pub fn composite_horizon(goal: SimDuration) -> SimTime {
    SimTime::ZERO + goal * 3 + SimDuration::from_secs(600)
}

/// Runs the composite + video workload under a goal controller.
pub fn run_composite_goal(cfg: GoalConfig, rng: &mut SimRng) -> GoalRun {
    run_composite_goal_full(cfg, false, FaultConfig::clean(), rng)
}

/// Like [`run_composite_goal`], optionally reversing the priority order
/// (web lowest, speech highest) — the priority ablation.
pub fn run_composite_goal_custom(
    cfg: GoalConfig,
    reverse_priorities: bool,
    rng: &mut SimRng,
) -> GoalRun {
    run_composite_goal_full(cfg, reverse_priorities, FaultConfig::clean(), rng)
}

/// Like [`run_composite_goal`], with a fault-injection configuration for
/// the substrate (link faults, RPC retry policy, lying battery gauge).
pub fn run_composite_goal_faulted(
    cfg: GoalConfig,
    faults: FaultConfig,
    rng: &mut SimRng,
) -> GoalRun {
    run_composite_goal_full(cfg, false, faults, rng)
}

/// A composite goal rig built but not yet run: the machine with all
/// workloads added, the priority order for the controller, and the
/// safety-net horizon. [`finish`] attaches the controller and runs; the
/// trace recorder attaches a `TraceHandle` in between.
#[derive(Debug)]
pub struct GoalRig {
    /// Machine with the composite members and background video added.
    pub machine: Machine,
    /// Controller priority order, lowest first.
    pub priorities: PriorityTable,
    /// Safety-net horizon against runaway workloads.
    pub horizon: SimTime,
}

/// Builds the Section 5.2 composite + video rig for a goal config.
pub fn build_composite_goal(
    cfg: &GoalConfig,
    reverse_priorities: bool,
    faults: FaultConfig,
    rng: &mut SimRng,
) -> GoalRig {
    let horizon = composite_horizon(cfg.goal);
    let mut m = Machine::new(MachineConfig {
        source: EnergySource::battery(cfg.initial_energy_j),
        monitor_overhead_w: MONITOR_OVERHEAD_W,
        faults,
        ..Default::default()
    });
    // Members arrive as [speech, web, map].
    let members = composite_members(
        CompositeMode::Every {
            period: SimDuration::from_secs(25),
            horizon,
        },
        true,
        rng,
    );
    let mut pids = Vec::new();
    for member in members {
        pids.push(m.add_process(Box::new(member)));
    }
    let video = VideoPlayer::adaptive(VIDEO_CLIPS[0], rng).looping_until(horizon);
    let video_pid = m.add_background_process(Box::new(video));
    // Lowest to highest: speech, video, map, web.
    let mut order = vec![pids[0], video_pid, pids[2], pids[1]];
    if reverse_priorities {
        order.reverse();
    }
    GoalRig {
        machine: m,
        priorities: PriorityTable::new(order),
        horizon,
    }
}

fn run_composite_goal_full(
    cfg: GoalConfig,
    reverse_priorities: bool,
    faults: FaultConfig,
    rng: &mut SimRng,
) -> GoalRun {
    let rig = build_composite_goal(&cfg, reverse_priorities, faults, rng);
    finish(rig.machine, cfg, rig.priorities, rig.horizon)
}

/// Runs the Section 5.4 bursty workload under a goal controller.
pub fn run_bursty_goal(cfg: GoalConfig, rng: &mut SimRng) -> GoalRun {
    let goal = cfg.goal;
    let horizon = SimTime::ZERO + goal * 2 + SimDuration::from_secs(600);
    let mut m = Machine::new(MachineConfig {
        source: EnergySource::battery(cfg.initial_energy_j),
        monitor_overhead_w: MONITOR_OVERHEAD_W,
        ..Default::default()
    });
    let mut pids = Vec::new();
    let mut video_pid = None;
    for role in BurstyRole::all() {
        let pid = m.add_process(Box::new(BurstyMember::new(role, horizon, rng)));
        if role == BurstyRole::Video {
            video_pid = Some(pid);
        }
        pids.push((role, pid));
    }
    // simlint: allow(D5) — the loop above adds a pid for every BurstyRole
    let pid_of = |r: BurstyRole| pids.iter().find(|(x, _)| *x == r).unwrap().1;
    let priorities = PriorityTable::new(vec![
        pid_of(BurstyRole::Speech),
        // simlint: allow(D5) — BurstyRole::all() includes Video
        video_pid.expect("video present"),
        pid_of(BurstyRole::Map),
        pid_of(BurstyRole::Web),
    ]);
    finish(m, cfg, priorities, horizon)
}

/// Attaches a [`GoalController`] with the given priorities and runs the
/// machine to the goal (or the safety-net horizon).
pub fn finish(
    mut m: Machine,
    cfg: GoalConfig,
    priorities: PriorityTable,
    horizon: SimTime,
) -> GoalRun {
    let sample_period = cfg.sample_period;
    let (handle, hook) = GoalController::new(cfg, priorities);
    m.add_hook(sample_period, hook);
    // The controller stops the run at the goal; the horizon is a safety
    // net against runaway workloads. The run goes through the service
    // API's batch mode — same engine as the always-on `serve` path.
    // simlint: allow(D5) — adopt/run on a fresh session cannot fail
    let mut session = simserve::Session::adopt(m).expect("adopt fresh machine");
    // simlint: allow(D5) — first run of a fresh session cannot fail
    let report = session.run_until(horizon).expect("run adopted session");
    GoalRun {
        outcome: handle.outcome(),
        report,
        supply: handle.supply_series(),
        demand: handle.demand_series(),
    }
}

/// Mean power of the workload at pinned fidelity, measured over `secs`
/// seconds without a controller — used to find feasible goal ranges.
pub fn uncontrolled_power_w(lowest: bool, secs: u64, rng: &mut SimRng) -> f64 {
    let horizon = SimTime::from_secs(secs);
    let mut m = Machine::new(MachineConfig::default());
    for member in composite_members(
        CompositeMode::Every {
            period: SimDuration::from_secs(25),
            horizon,
        },
        false,
        rng,
    ) {
        let member = if lowest {
            member.at_lowest_fidelity()
        } else {
            member
        };
        m.add_process(Box::new(member));
    }
    let mut video = VideoPlayer::adaptive(VIDEO_CLIPS[0], rng).looping_until(horizon);
    if lowest {
        while video.on_upcall(machine::AdaptDirection::Degrade, SimTime::ZERO) {}
    }
    m.add_background_process(Box::new(video));
    let report = m.run_until(horizon);
    report.total_j / report.duration_s()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_power_brackets_are_sane() {
        let mut rng = SimRng::new(1);
        let full = uncontrolled_power_w(false, 120, &mut rng);
        let low = uncontrolled_power_w(true, 120, &mut rng);
        assert!(
            low < full,
            "lowest fidelity power {low} not below full {full}"
        );
        assert!((6.0..16.0).contains(&full), "full power {full}");
        assert!((5.0..12.0).contains(&low), "lowest power {low}");
    }

    #[test]
    fn composite_goal_runs_and_reports() {
        let mut rng = SimRng::new(2);
        let cfg = GoalConfig::paper(3000.0, SimDuration::from_secs(240));
        let run = run_composite_goal(cfg, &mut rng);
        assert!(run.supply.len() > 50);
        assert_eq!(run.supply.len(), run.demand.len());
        // Either the goal was met or the battery drained; both terminate.
        assert!(run.outcome.goal_met || run.report.exhausted);
    }

    #[test]
    fn video_degrades_fully() {
        let mut rng = SimRng::new(3);
        let mut v = VideoPlayer::adaptive(VIDEO_CLIPS[0], &mut rng);
        let mut n = 0;
        while v.on_upcall(machine::AdaptDirection::Degrade, SimTime::ZERO) {
            n += 1;
        }
        assert_eq!(n, 3, "video ladder has 4 levels");
        assert_eq!(v.fidelity().level, 0);
    }
}

#[cfg(test)]
mod envelope_probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_bursty_long() {
        use odyssey_apps::bursty::{BurstyMember, BurstyRole};
        let root = SimRng::new(42);
        for i in 0..3u64 {
            for lowest in [false, true] {
                let mut rng = root.fork_indexed("sec54", i);
                let horizon = SimTime::from_secs(9900);
                let mut m = Machine::new(MachineConfig::default());
                for role in BurstyRole::all() {
                    let mut member = BurstyMember::new(role, horizon, &mut rng);
                    if lowest {
                        while member.on_upcall(machine::AdaptDirection::Degrade, SimTime::ZERO) {}
                    }
                    m.add_process(Box::new(member));
                }
                let report = m.run_until(horizon);
                eprintln!(
                    "LONG seed={i} lowest={lowest} power={:.2} W",
                    report.total_j / report.duration_s()
                );
            }
        }
    }

    #[test]
    #[ignore]
    fn print_bursty_seed_spread() {
        use odyssey_apps::bursty::{BurstyMember, BurstyRole};
        let root = SimRng::new(42);
        for i in 0..5u64 {
            for lowest in [false, true] {
                let mut rng = root.fork_indexed("fig22", i);
                let horizon = SimTime::from_secs(1560);
                let mut m = Machine::new(MachineConfig::default());
                for role in BurstyRole::all() {
                    let mut member = BurstyMember::new(role, horizon, &mut rng);
                    if lowest {
                        while member.on_upcall(machine::AdaptDirection::Degrade, SimTime::ZERO) {}
                    }
                    m.add_process(Box::new(member));
                }
                let report = m.run_until(horizon);
                eprintln!(
                    "SEED {i} lowest={lowest} power={:.2} W ({:.0} J over 1560 s)",
                    report.total_j / report.duration_s(),
                    report.total_j
                );
            }
        }
    }

    #[test]
    #[ignore]
    fn print_bursty_envelope() {
        use odyssey_apps::bursty::{BurstyMember, BurstyRole};
        for lowest in [false, true] {
            let mut rng = SimRng::new(11);
            let horizon = SimTime::from_secs(1200);
            let mut m = Machine::new(MachineConfig::default());
            for role in BurstyRole::all() {
                let mut member = BurstyMember::new(role, horizon, &mut rng);
                if lowest {
                    while member.on_upcall(machine::AdaptDirection::Degrade, SimTime::ZERO) {}
                }
                m.add_process(Box::new(member));
            }
            let report = m.run_until(horizon);
            eprintln!(
                "BURSTY lowest={lowest} power={:.2} W",
                report.total_j / report.duration_s()
            );
        }
    }

    #[test]
    #[ignore]
    fn print_power_envelope() {
        let mut rng = SimRng::new(7);
        let full = uncontrolled_power_w(false, 300, &mut rng);
        let low = uncontrolled_power_w(true, 300, &mut rng);
        eprintln!(
            "ENVELOPE full={full:.2} W low={low:.2} W ratio={:.3}",
            full / low
        );
        eprintln!(
            "12 kJ durations: full {:.0} s, low {:.0} s",
            12000.0 / full,
            12000.0 / low
        );
    }
}
