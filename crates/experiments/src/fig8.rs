//! Figure 8: energy impact of fidelity for speech recognition.
//!
//! Four utterances × six bars: baseline (local recognition at full
//! fidelity, no power management), hardware-only, reduced model, remote,
//! hybrid, and hybrid with reduced model.

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{Utterance, UTTERANCES};
use odyssey_apps::{SpeechApp, SpeechStrategy};
use simcore::SimRng;

use crate::barchart::BarChart;
use crate::harness::{run_trials, Trials};

/// The six experimental conditions, in figure order.
pub const CONDITIONS: [(&str, SpeechStrategy, bool, bool); 6] = [
    ("Baseline", SpeechStrategy::Local, false, false),
    (
        "Hardware-Only Power Mgmt.",
        SpeechStrategy::Local,
        false,
        true,
    ),
    ("Reduced Model", SpeechStrategy::Local, true, true),
    ("Remote", SpeechStrategy::Remote, false, true),
    ("Hybrid", SpeechStrategy::Hybrid, false, true),
    ("Hybrid Reduced-Model", SpeechStrategy::Hybrid, true, true),
];

fn build(
    utterance: Utterance,
    strategy: SpeechStrategy,
    reduced: bool,
    pm: bool,
    rng: &mut SimRng,
) -> Machine {
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(SpeechApp::fixed(
        vec![utterance],
        strategy,
        reduced,
        rng,
    )));
    m
}

/// Runs the full figure.
pub fn run(trials: &Trials) -> BarChart {
    let mut chart = BarChart::new("Figure 8: Energy impact of fidelity for speech recognition (J)");
    for u in &UTTERANCES {
        for (name, strategy, reduced, pm) in CONDITIONS {
            let label = format!("fig8/{}/{}", u.name, name);
            let reports = run_trials(trials, &label, |rng| build(*u, strategy, reduced, pm, rng));
            chart.push(u.name, name, &reports);
        }
    }
    chart
}

/// Renders the figure as a table.
pub fn render(trials: &Trials) -> String {
    run(trials).to_table().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        run(&Trials::quick())
    }

    /// Paper: hardware-only PM reduces client energy by 33-34%.
    #[test]
    fn hw_only_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Hardware-Only Power Mgmt.", "Baseline");
        assert!(lo > 25.0 && hi < 42.0, "hw-only band {lo}-{hi}%");
    }

    /// Paper: reduced model saves 25-46% relative to hardware-only.
    #[test]
    fn reduced_model_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Reduced Model", "Hardware-Only Power Mgmt.");
        assert!(lo > 15.0 && hi < 55.0, "reduced band {lo}-{hi}%");
        assert!(hi - lo > 5.0, "band should vary across utterances");
    }

    /// Paper: remote at full fidelity is 33-44% below hardware-only.
    #[test]
    fn remote_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Remote", "Hardware-Only Power Mgmt.");
        assert!(lo > 20.0 && hi < 55.0, "remote band {lo}-{hi}%");
    }

    /// Paper: hybrid offers slightly greater savings than remote
    /// (47-55% below hardware-only at full fidelity).
    #[test]
    fn hybrid_beats_remote() {
        let c = chart();
        for o in c.objects() {
            assert!(
                c.energy_j(&o, "Hybrid") < c.energy_j(&o, "Remote"),
                "hybrid not cheaper for {o}"
            );
        }
        let (lo, hi) = c.saving_band("Hybrid", "Hardware-Only Power Mgmt.");
        assert!(lo > 30.0 && hi < 65.0, "hybrid band {lo}-{hi}%");
    }

    /// Paper: hybrid + low fidelity reaches 69-80% below baseline.
    #[test]
    fn hybrid_reduced_vs_baseline() {
        let c = chart();
        let (lo, hi) = c.saving_band("Hybrid Reduced-Model", "Baseline");
        assert!(lo > 55.0 && hi < 88.0, "hybrid-reduced band {lo}-{hi}%");
    }
}
