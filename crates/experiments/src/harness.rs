//! Shared experiment plumbing.
//!
//! The paper reports each bar as "the mean of five trials" (ten for the
//! map and web applications) with 90% confidence intervals. A [`Trials`]
//! carries the trial count and master seed; [`run_trials`] executes a
//! machine-builder closure once per trial with a trial-specific random
//! stream and reduces the reports.

use machine::{Machine, RunReport};
use simcore::{SimRng, TrialStats};

/// Trial configuration for an experiment.
#[derive(Clone, Copy, Debug)]
pub struct Trials {
    /// Number of repetitions per data point.
    pub n: usize,
    /// Master seed; trial `i` runs with stream `fork_indexed(label, i)`.
    pub seed: u64,
}

impl Default for Trials {
    fn default() -> Self {
        Trials { n: 5, seed: 42 }
    }
}

impl Trials {
    /// A quick configuration for tests and benches: two trials.
    pub fn quick() -> Self {
        Trials { n: 2, seed: 42 }
    }

    /// A single deterministic trial (traces, profiles).
    pub fn single() -> Self {
        Trials { n: 1, seed: 42 }
    }
}

/// Runs `build` once per trial and returns all reports.
///
/// `label` isolates this experiment's random streams from others sharing
/// the master seed.
pub fn run_trials(
    trials: &Trials,
    label: &str,
    mut build: impl FnMut(&mut SimRng) -> Machine,
) -> Vec<RunReport> {
    let root = SimRng::new(trials.seed);
    (0..trials.n)
        .map(|i| {
            let mut rng = root.fork_indexed(label, i as u64);
            let mut machine = build(&mut rng);
            machine.run()
        })
        .collect()
}

/// Total-energy statistics over a set of reports.
pub fn energy_stats(reports: &[RunReport]) -> TrialStats {
    let values: Vec<f64> = reports.iter().map(|r| r.total_j).collect();
    TrialStats::from_values(&values)
}

/// Mean energy attributed to `bucket` across reports, J.
pub fn mean_bucket_j(reports: &[RunReport], bucket: &str) -> f64 {
    reports.iter().map(|r| r.bucket_j(bucket)).sum::<f64>() / reports.len() as f64
}

/// Mean display energy across reports, J (for zoned-backlight projection).
pub fn mean_display_j(reports: &[RunReport]) -> f64 {
    reports.iter().map(|r| r.components.display_j).sum::<f64>() / reports.len() as f64
}

/// Percentage saving of `new` relative to `old`.
pub fn saving_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (1.0 - new / old) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::workload::ScriptedWorkload;
    use machine::MachineConfig;
    use simcore::SimDuration;

    fn build_idle(_rng: &mut SimRng) -> Machine {
        let mut m = Machine::new(MachineConfig::baseline());
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "w",
            SimDuration::from_secs(2),
        )));
        m
    }

    #[test]
    fn run_trials_produces_n_reports() {
        let reports = run_trials(&Trials::quick(), "t", build_idle);
        assert_eq!(reports.len(), 2);
        let stats = energy_stats(&reports);
        assert!((stats.mean - 2.0 * 10.28).abs() < 0.1);
        assert!(stats.sd < 0.01, "idle runs are deterministic");
    }

    #[test]
    fn trials_are_reproducible() {
        let a = energy_stats(&run_trials(&Trials::default(), "x", build_idle));
        let b = energy_stats(&run_trials(&Trials::default(), "x", build_idle));
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn saving_pct_basics() {
        assert!((saving_pct(100.0, 90.0) - 10.0).abs() < 1e-12);
        assert_eq!(saving_pct(0.0, 5.0), 0.0);
        assert!(saving_pct(100.0, 120.0) < 0.0);
    }

    #[test]
    fn bucket_mean() {
        let reports = run_trials(&Trials::quick(), "b", build_idle);
        let idle = mean_bucket_j(&reports, "Idle");
        assert!((idle - 2.0 * 10.28).abs() < 0.1);
        assert_eq!(mean_bucket_j(&reports, "none"), 0.0);
    }
}
