//! Shared experiment plumbing.
//!
//! The paper reports each bar as "the mean of five trials" (ten for the
//! map and web applications) with 90% confidence intervals. A [`Trials`]
//! carries the trial count, master seed, and worker-thread count;
//! [`run_trials`] executes a machine-builder closure once per trial with
//! a trial-specific random stream and reduces the reports.
//!
//! Trials are independent by construction — trial `i`'s stream is a pure
//! function of `(seed, label, i)`, forked *before* any trial runs — so
//! [`run_trials`] fans them out through the [`simcore::par`] work pool
//! and merges reports in trial order. The parallel run is byte-identical
//! to the serial one at any thread count (`tests/parallel_equivalence.rs`
//! pins this).
//!
//! Every trial executes through the [`simserve::Session`] batch API
//! ([`Session::adopt`]), so the harness and the always-on `serve` mode
//! share one engine: a batch trial is just a session nobody reconfigures.

use machine::{Machine, RunReport};
use simcore::{SimRng, TrialStats};
use simserve::Session;

/// Trial configuration for an experiment.
#[derive(Clone, Copy, Debug)]
pub struct Trials {
    /// Number of repetitions per data point.
    pub n: usize,
    /// Master seed; trial `i` runs with stream `fork_indexed(label, i)`.
    pub seed: u64,
    /// Worker threads for trial/cell fan-out (1 = serial; results are
    /// byte-identical at any value).
    pub threads: usize,
}

impl Default for Trials {
    fn default() -> Self {
        Trials {
            n: 5,
            seed: 42,
            threads: 1,
        }
    }
}

impl Trials {
    /// A quick configuration for tests and benches: two trials.
    pub fn quick() -> Self {
        Trials {
            n: 2,
            ..Trials::default()
        }
    }

    /// A single deterministic trial (traces, profiles).
    pub fn single() -> Self {
        Trials {
            n: 1,
            ..Trials::default()
        }
    }

    /// The same configuration fanned out over `threads` workers.
    pub fn with_threads(self, threads: usize) -> Self {
        Trials {
            threads: threads.max(1),
            ..self
        }
    }
}

/// Runs `build` once per trial and returns all reports, in trial order.
///
/// `label` isolates this experiment's random streams from others sharing
/// the master seed. Every trial stream is forked *up front* from the
/// master — a pure function of `(seed, label, i)` — so neither the trial
/// count nor the execution order (serial or parallel) can perturb the
/// draws any trial sees.
///
/// Trials are few and expensive with skewed costs (a trial that adapts
/// often runs much longer than one that coasts), so the pool is pinned
/// to grain 1: each chunk is a single trial, and a worker stuck on a
/// long trial never holds undone trials hostage.
pub fn run_trials(
    trials: &Trials,
    label: &str,
    build: impl Fn(&mut SimRng) -> Machine + Sync,
) -> Vec<RunReport> {
    let root = SimRng::new(trials.seed);
    // Hoisted fork: all per-trial streams exist before any trial runs.
    let streams: Vec<SimRng> = (0..trials.n)
        .map(|i| root.fork_indexed(label, i as u64))
        .collect();
    let cfg = simcore::par::PoolConfig::new(trials.threads).grain(1);
    simcore::par::map_stats(&cfg, &streams, |_, stream| {
        let mut rng = stream.clone();
        let machine = build(&mut rng);
        // simlint: allow(D5) — adopt/run on a fresh session cannot fail
        let mut session = Session::adopt(machine).expect("adopt fresh machine");
        // simlint: allow(D5) — first run of a fresh session cannot fail
        session.run_to_completion().expect("run adopted session")
    })
    .0
}

/// Total-energy statistics over a set of reports.
pub fn energy_stats(reports: &[RunReport]) -> TrialStats {
    let values: Vec<f64> = reports.iter().map(|r| r.total_j).collect();
    TrialStats::from_values(&values)
}

/// Mean energy attributed to `bucket` across reports, J.
pub fn mean_bucket_j(reports: &[RunReport], bucket: &str) -> f64 {
    reports.iter().map(|r| r.bucket_j(bucket)).sum::<f64>() / reports.len() as f64
}

/// Mean display energy across reports, J (for zoned-backlight projection).
pub fn mean_display_j(reports: &[RunReport]) -> f64 {
    reports.iter().map(|r| r.components.display_j).sum::<f64>() / reports.len() as f64
}

/// Percentage saving of `new` relative to `old`.
pub fn saving_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (1.0 - new / old) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::workload::ScriptedWorkload;
    use machine::MachineConfig;
    use simcore::SimDuration;

    fn build_idle(_rng: &mut SimRng) -> Machine {
        let mut m = Machine::new(MachineConfig::baseline());
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "w",
            SimDuration::from_secs(2),
        )));
        m
    }

    #[test]
    fn run_trials_produces_n_reports() {
        let reports = run_trials(&Trials::quick(), "t", build_idle);
        assert_eq!(reports.len(), 2);
        let stats = energy_stats(&reports);
        assert!((stats.mean - 2.0 * 10.28).abs() < 0.1);
        assert!(stats.sd < 0.01, "idle runs are deterministic");
    }

    #[test]
    fn trials_are_reproducible() {
        let a = energy_stats(&run_trials(&Trials::default(), "x", build_idle));
        let b = energy_stats(&run_trials(&Trials::default(), "x", build_idle));
        assert_eq!(a.mean, b.mean);
    }

    /// Regression (fork hoist): trial `i` sees the same random stream no
    /// matter how many trials run alongside it — adding trials (or
    /// parallelism) must never shift an existing trial's draws.
    #[test]
    fn trial_streams_independent_of_trial_count() {
        let few = run_trials(
            &Trials {
                n: 2,
                ..Trials::default()
            },
            "ind",
            build_idle,
        );
        let many = run_trials(
            &Trials {
                n: 5,
                ..Trials::default()
            },
            "ind",
            build_idle,
        );
        for (i, (a, b)) in few.iter().zip(many.iter()).enumerate() {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "trial {i} drifted when n grew from 2 to 5"
            );
        }
    }

    /// The parallel fan-out merges in trial order: reports are
    /// byte-identical to the serial run at every thread count.
    #[test]
    fn parallel_reports_match_serial() {
        let serial = run_trials(&Trials::default(), "par", build_idle);
        for threads in [2, 4, 8] {
            let par = run_trials(&Trials::default().with_threads(threads), "par", build_idle);
            assert_eq!(serial.len(), par.len());
            for (i, (a, b)) in serial.iter().zip(par.iter()).enumerate() {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "trial {i} differs at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Trials::default().with_threads(0).threads, 1);
        assert_eq!(Trials::default().with_threads(6).threads, 6);
    }

    #[test]
    fn saving_pct_basics() {
        assert!((saving_pct(100.0, 90.0) - 10.0).abs() < 1e-12);
        assert_eq!(saving_pct(0.0, 5.0), 0.0);
        assert!(saving_pct(100.0, 120.0) < 0.0);
    }

    #[test]
    fn bucket_mean() {
        let reports = run_trials(&Trials::quick(), "b", build_idle);
        let idle = mean_bucket_j(&reports, "Idle");
        assert!((idle - 2.0 * 10.28).abs() < 0.1);
        assert_eq!(mean_bucket_j(&reports, "none"), 0.0);
    }
}
