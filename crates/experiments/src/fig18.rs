//! Figure 18: projected energy impact of zoned backlighting.
//!
//! The video and map experiments are re-expressed on hypothetical 4-zone
//! and 8-zone displays: measured display energy is scaled by the fraction
//! of zones each application's window lights (Section 4.2's projection).
//! All entries are normalized to the unzoned baseline measurement.

use backlight::{
    ZoneGrid, MAP_FULL_WINDOW, MAP_LOWEST_WINDOW, VIDEO_FULL_WINDOW, VIDEO_REDUCED_WINDOW,
};
use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{MAPS, VIDEO_CLIPS};
use odyssey_apps::map::{MapFilter, MapViewer};
use odyssey_apps::{MapFidelity, VideoPlayer, VideoVariant};
use simcore::{SimDuration, SimRng};

use crate::harness::{mean_display_j, run_trials, Trials};
use crate::table::{ratio, Table};

/// One row: an application (at a think time) with normalized energies.
#[derive(Clone, Debug)]
pub struct ZonedRow {
    /// Application name.
    pub app: &'static str,
    /// Think time, seconds (`None` for video).
    pub think_s: Option<f64>,
    /// Hardware-only PM at full fidelity: [no zones, 4-zone, 8-zone],
    /// normalized to baseline.
    pub hw_only: [f64; 3],
    /// Lowest fidelity with PM ("Combined"): [no zones, 4-zone, 8-zone].
    pub combined: [f64; 3],
}

/// The full projection.
#[derive(Clone, Debug)]
pub struct Fig18 {
    /// Video row then map rows by think time.
    pub rows: Vec<ZonedRow>,
}

struct Measured {
    total_j: f64,
    display_j: f64,
}

fn project(m: &Measured, grid: ZoneGrid, window: backlight::WindowRect) -> f64 {
    let lit = grid.zones_snapped(window);
    let frac = grid.lit_fraction(lit);
    // Unlit zones drop to the dim level (see backlight::project).
    let factor = frac + (1.0 - frac) * backlight::project::dim_ratio();
    m.total_j - m.display_j * (1.0 - factor)
}

fn measure(
    trials: &Trials,
    label: &str,
    build: impl Fn(&mut SimRng) -> Machine + Sync,
) -> Measured {
    let reports = run_trials(trials, label, build);
    Measured {
        total_j: crate::harness::energy_stats(&reports).mean,
        display_j: mean_display_j(&reports),
    }
}

fn zoned_triplet(m: &Measured, window: backlight::WindowRect, baseline_j: f64) -> [f64; 3] {
    [
        m.total_j / baseline_j,
        project(m, ZoneGrid::four_zone(), window) / baseline_j,
        project(m, ZoneGrid::eight_zone(), window) / baseline_j,
    ]
}

/// Runs the projection with the paper's think times for the map rows.
pub fn run(trials: &Trials) -> Fig18 {
    run_with_thinks(trials, &[0.0, 5.0, 10.0, 20.0])
}

/// Runs the projection with chosen map think times.
pub fn run_with_thinks(trials: &Trials, thinks: &[f64]) -> Fig18 {
    let mut rows = Vec::new();

    // Video: baseline, hardware-only (full window), combined (reduced
    // window).
    let video = |variant: VideoVariant, pm: bool, rng: &mut SimRng| {
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(VideoPlayer::fixed(VIDEO_CLIPS[0], variant, rng)));
        m
    };
    let base = measure(trials, "fig18/video/base", |rng| {
        video(VideoVariant::Full, false, rng)
    });
    let hw = measure(trials, "fig18/video/hw", |rng| {
        video(VideoVariant::Full, true, rng)
    });
    let low = measure(trials, "fig18/video/low", |rng| {
        video(VideoVariant::Combined, true, rng)
    });
    rows.push(ZonedRow {
        app: "Video",
        think_s: None,
        hw_only: zoned_triplet(&hw, VIDEO_FULL_WINDOW, base.total_j),
        combined: zoned_triplet(&low, VIDEO_REDUCED_WINDOW, base.total_j),
    });

    // Map rows per think time.
    let map = |fid: MapFidelity, pm: bool, think: f64, rng: &mut SimRng| {
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(
            MapViewer::fixed(vec![MAPS[0]], fid, rng)
                .with_think_time(SimDuration::from_secs_f64(think)),
        ));
        m
    };
    let lowest = MapFidelity {
        filter: MapFilter::Secondary,
        cropped: true,
    };
    for &think in thinks {
        let base = measure(trials, &format!("fig18/map/base/{think}"), |rng| {
            map(MapFidelity::full(), false, think, rng)
        });
        let hw = measure(trials, &format!("fig18/map/hw/{think}"), |rng| {
            map(MapFidelity::full(), true, think, rng)
        });
        let low = measure(trials, &format!("fig18/map/low/{think}"), |rng| {
            map(lowest, true, think, rng)
        });
        rows.push(ZonedRow {
            app: "Map",
            think_s: Some(think),
            hw_only: zoned_triplet(&hw, MAP_FULL_WINDOW, base.total_j),
            combined: zoned_triplet(&low, MAP_LOWEST_WINDOW, base.total_j),
        });
    }
    Fig18 { rows }
}

/// Renders the projection table.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut t = Table::new(
        "Figure 18: Projected energy impact of zoned backlighting (normalized)",
        &[
            "App",
            "Think (s)",
            "HW-only NoZones",
            "HW 4-Zone",
            "HW 8-Zone",
            "Comb NoZones",
            "Comb 4-Zone",
            "Comb 8-Zone",
        ],
    );
    for r in &f.rows {
        t.push_row(vec![
            r.app.to_string(),
            r.think_s.map(|s| format!("{s}")).unwrap_or("N/A".into()),
            ratio(r.hw_only[0]),
            ratio(r.hw_only[1]),
            ratio(r.hw_only[2]),
            ratio(r.combined[0]),
            ratio(r.combined[1]),
            ratio(r.combined[2]),
        ]);
    }
    t.with_caption(
        "Zone counts: video 1/4 & 2/8 full, 1/8 reduced; map 4/4 & 6/8 full, 2/4 & 3/8 lowest.",
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig18 {
        run_with_thinks(&Trials::single(), &[5.0])
    }

    /// Video at full fidelity fits one of four zones → a large share of
    /// display energy disappears (paper: 17-18% reduction at think 5 s is
    /// for the map; for video the 4-zone saving is visible immediately).
    #[test]
    fn video_zones_save_energy() {
        let f = fig();
        let v = &f.rows[0];
        assert!(v.hw_only[1] < v.hw_only[0], "4-zone must beat no-zones");
        assert!(
            v.hw_only[2] <= v.hw_only[1] + 1e-9,
            "8-zone at least as good"
        );
        // Combined + zones is the cheapest cell in the row.
        assert!(v.combined[2] < v.hw_only[0]);
    }

    /// The map at full fidelity lights all four zones: no 4-zone benefit.
    #[test]
    fn full_map_gets_no_4zone_benefit() {
        let f = fig();
        let m = f.rows.iter().find(|r| r.app == "Map").unwrap();
        assert!(
            (m.hw_only[1] - m.hw_only[0]).abs() < 1e-9,
            "4 zones lit of 4: projection must be identity"
        );
        // But 6 of 8 zones → an 8-zone benefit exists.
        assert!(m.hw_only[2] < m.hw_only[0]);
    }

    /// Lowering fidelity enhances the zoned savings (the paper's second
    /// key result).
    #[test]
    fn fidelity_enhances_zoned_savings() {
        let f = fig();
        let m = f.rows.iter().find(|r| r.app == "Map").unwrap();
        let hw_zone_gain = m.hw_only[0] - m.hw_only[2];
        let comb_zone_gain = m.combined[0] - m.combined[2];
        assert!(
            comb_zone_gain > hw_zone_gain,
            "lowest-fidelity zone gain {comb_zone_gain} not above full-fidelity {hw_zone_gain}"
        );
    }

    /// Projected savings land in the paper's 7-29% envelope.
    #[test]
    fn savings_envelope() {
        let f = fig();
        for r in &f.rows {
            for (all, zoned) in [(r.hw_only[0], r.hw_only[2]), (r.combined[0], r.combined[2])] {
                let saving = (all - zoned) / all;
                assert!(
                    (0.0..=0.35).contains(&saving),
                    "{} zoned saving {saving} outside envelope",
                    r.app
                );
            }
        }
    }
}
