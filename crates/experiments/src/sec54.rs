//! Section 5.4: longer-duration goal-directed adaptation.
//!
//! "We began each experiment with an energy supply of 90,000 J, roughly
//! matching a fully-charged ThinkPad 560X battery. We specified an
//! initial time duration of 2 hours and 45 minutes, but extended this
//! goal by 30 minutes at the end of the first hour" — modelling a user
//! revising the battery-life estimate mid-flight. The workload is the
//! bursty stochastic model; five trials with different seeds.
//!
//! The paper observes fewer adaptations than the short experiments: far
//! from the goal, smoothing is aggressive and the hysteresis zone (5% of
//! a large residual energy) is wide, so minor fluctuations are ignored
//! until late in each trial.

use odyssey::GoalConfig;
use simcore::{SimDuration, SimRng, SimTime};

use crate::fig20::APPS;
use crate::goalrig::run_bursty_goal;
use crate::harness::Trials;
use crate::table::Table;

/// Energy supply, J. The paper's 90,000 J matches a fully-charged 560X
/// battery; scaled by our platform's higher wall draw (as in Figures 19,
/// 20 and 22) so the 2:45 goal sits just past the full-fidelity duration
/// and the extended goal remains feasible at lowest fidelity.
pub const INITIAL_ENERGY_J: f64 = 110_000.0;

/// Initial goal: 2 hours 45 minutes.
pub const INITIAL_GOAL_S: u64 = 9_900;

/// Revised goal after the extension: 3 hours 15 minutes.
pub const EXTENDED_GOAL_S: u64 = 11_700;

/// The extension is applied at the end of the first hour.
pub const EXTENSION_AT_S: u64 = 3_600;

/// One trial's outcome.
#[derive(Clone, Debug)]
pub struct LongTrial {
    /// Trial index.
    pub trial: usize,
    /// Whether the supply lasted to the extended goal.
    pub goal_met: bool,
    /// Residual energy at the end, J.
    pub residual_j: f64,
    /// Wall-clock duration, seconds.
    pub duration_s: f64,
    /// Adaptations per application.
    pub adaptations: Vec<usize>,
}

/// The experiment.
#[derive(Clone, Debug)]
pub struct Sec54 {
    /// One row per trial.
    pub trials: Vec<LongTrial>,
}

impl Sec54 {
    /// Fraction of trials meeting the (extended) goal.
    pub fn met_fraction(&self) -> f64 {
        self.trials.iter().filter(|t| t.goal_met).count() as f64 / self.trials.len() as f64
    }

    /// Mean adaptations per application across trials.
    pub fn mean_adaptations(&self) -> f64 {
        let total: usize = self
            .trials
            .iter()
            .map(|t| t.adaptations.iter().sum::<usize>())
            .sum();
        total as f64 / self.trials.len() as f64
    }
}

/// Runs the paper's configuration.
pub fn run(trials: &Trials) -> Sec54 {
    run_config(
        trials,
        INITIAL_ENERGY_J,
        INITIAL_GOAL_S,
        EXTENSION_AT_S,
        EXTENDED_GOAL_S,
    )
}

/// Runs a scaled configuration (tests use shorter horizons).
pub fn run_config(
    trials: &Trials,
    initial_j: f64,
    goal_s: u64,
    extend_at_s: u64,
    extended_goal_s: u64,
) -> Sec54 {
    let root = SimRng::new(trials.seed);
    let rows = (0..trials.n)
        .map(|i| {
            let mut rng = root.fork_indexed("sec54", i as u64);
            let cfg = GoalConfig::paper(initial_j, SimDuration::from_secs(goal_s)).with_extension(
                SimTime::from_secs(extend_at_s),
                SimDuration::from_secs(extended_goal_s),
            );
            let run = run_bursty_goal(cfg, &mut rng);
            LongTrial {
                trial: i + 1,
                goal_met: run.outcome.goal_met,
                residual_j: run.report.residual_j,
                duration_s: run.report.duration_s(),
                adaptations: APPS.iter().map(|a| run.adaptations_of(a)).collect(),
            }
        })
        .collect();
    Sec54 { trials: rows }
}

/// Renders the per-trial table.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut t = Table::new(
        format!(
            "Section 5.4: Longer-duration goals ({INITIAL_ENERGY_J:.0} J, \
             {INITIAL_GOAL_S}s goal extended to {EXTENDED_GOAL_S}s at t={EXTENSION_AT_S}s)"
        ),
        &[
            "Trial",
            "Goal Met",
            "Residual (J)",
            "Duration (s)",
            "Adapt speech",
            "Adapt video",
            "Adapt map",
            "Adapt web",
        ],
    );
    for r in &f.trials {
        let mut row = vec![
            r.trial.to_string(),
            if r.goal_met { "Yes" } else { "No" }.to_string(),
            format!("{:.0}", r.residual_j),
            format!("{:.0}", r.duration_s),
        ];
        for a in &r.adaptations {
            row.push(a.to_string());
        }
        t.push_row(row);
    }
    t.with_caption(
        "Paper: goal met in all five trials; four of five ended with <1% residual energy.",
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down version of the experiment (1/6 of every duration and
    /// the supply) keeps the test fast while exercising the extension.
    #[test]
    fn scaled_long_goal_with_extension_is_met() {
        let f = run_config(
            &Trials {
                n: 2,
                seed: 42,
                threads: 1,
            },
            18_500.0,
            1_650,
            600,
            1_950,
        );
        for t in &f.trials {
            assert!(
                t.goal_met,
                "trial {} missed: duration {:.0}s residual {:.0} J",
                t.trial, t.duration_s, t.residual_j
            );
            // The run must end at the *extended* goal, not the initial one.
            assert!(
                (t.duration_s - 1_950.0).abs() < 5.0,
                "trial {} ended at {:.0}s",
                t.trial,
                t.duration_s
            );
        }
    }
}
