//! Figure 21: sensitivity to the smoothing half-life.
//!
//! The smoothing α is set so the decay half-life is a fixed fraction of
//! the time remaining; the paper sweeps 1%, 5%, 10% and 15%. A 1%
//! half-life "is clearly too unstable — the system produces the largest
//! residue"; as the half-life grows the system becomes more stable
//! (fewer adaptations). The 10% choice balances agility and stability.

use odyssey::GoalConfig;
use simcore::{SimDuration, SimRng, TrialStats};

use crate::fig19::INITIAL_ENERGY_J;
use crate::fig20::APPS;
use crate::goalrig::run_composite_goal;
use crate::harness::Trials;
use crate::table::Table;

/// Half-life fractions swept (1%, 5%, 10%, 15% of time remaining).
pub const HALF_LIVES: [f64; 4] = [0.01, 0.05, 0.10, 0.15];

/// A moderately tight goal where smoothing quality matters, seconds.
pub const GOAL_S: u64 = 1500;

/// One half-life's row.
#[derive(Clone, Debug)]
pub struct HalfLifeRow {
    /// Half-life as a fraction of time remaining.
    pub half_life: f64,
    /// Fraction of trials meeting the goal.
    pub met_fraction: f64,
    /// Residual energy statistics, J.
    pub residual: TrialStats,
    /// Total adaptations across applications, per-trial statistics.
    pub total_adaptations: TrialStats,
    /// Per-application adaptation statistics, in [`crate::fig20::APPS`] order.
    pub adaptations: Vec<TrialStats>,
}

/// The full sensitivity sweep.
#[derive(Clone, Debug)]
pub struct Fig21 {
    /// One row per half-life.
    pub rows: Vec<HalfLifeRow>,
}

impl Fig21 {
    /// The row for a half-life value.
    ///
    /// # Panics
    ///
    /// Panics if absent.
    pub fn row(&self, half_life: f64) -> &HalfLifeRow {
        self.rows
            .iter()
            .find(|r| (r.half_life - half_life).abs() < 1e-12)
            // simlint: allow(D5) — documented # Panics accessor
            .expect("half-life present")
    }
}

/// Runs the sweep at the paper's half-life values.
pub fn run(trials: &Trials) -> Fig21 {
    run_half_lives(trials, &HALF_LIVES)
}

/// Runs the sweep at chosen half-life values.
pub fn run_half_lives(trials: &Trials, half_lives: &[f64]) -> Fig21 {
    let root = SimRng::new(trials.seed);
    let rows = half_lives
        .iter()
        .map(|&half_life| {
            let mut met = 0usize;
            let mut residuals = Vec::new();
            let mut totals = Vec::new();
            let mut adapt: Vec<Vec<f64>> = vec![Vec::new(); APPS.len()];
            for i in 0..trials.n {
                let mut rng = root.fork_indexed(&format!("fig21/{half_life}"), i as u64);
                let mut cfg = GoalConfig::paper(INITIAL_ENERGY_J, SimDuration::from_secs(GOAL_S));
                cfg.half_life_frac = half_life;
                let run = run_composite_goal(cfg, &mut rng);
                if run.outcome.goal_met {
                    met += 1;
                }
                residuals.push(run.report.residual_j);
                let mut total = 0usize;
                for (k, app) in APPS.iter().enumerate() {
                    let n = run.adaptations_of(app);
                    adapt[k].push(n as f64);
                    total += n;
                }
                totals.push(total as f64);
            }
            HalfLifeRow {
                half_life,
                met_fraction: met as f64 / trials.n as f64,
                residual: TrialStats::from_values(&residuals),
                total_adaptations: TrialStats::from_values(&totals),
                adaptations: adapt.iter().map(|v| TrialStats::from_values(v)).collect(),
            }
        })
        .collect();
    Fig21 { rows }
}

/// Renders the sensitivity table.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut t = Table::new(
        format!("Figure 21: Sensitivity to half-life (goal {GOAL_S}s, {INITIAL_ENERGY_J:.0} J)"),
        &[
            "Half-Life",
            "Goal Met",
            "Residue (J)",
            "Adaptations",
            "speech",
            "video",
            "map",
            "web",
        ],
    );
    for r in &f.rows {
        let mut row = vec![
            format!("{:.2}", r.half_life),
            format!("{:.0}%", r.met_fraction * 100.0),
            format!("{:.1} ({:.1})", r.residual.mean, r.residual.sd),
            format!(
                "{:.1} ({:.1})",
                r.total_adaptations.mean, r.total_adaptations.sd
            ),
        ];
        for a in &r.adaptations {
            row.push(format!("{:.1}", a.mean));
        }
        t.push_row(row);
    }
    t.with_caption(
        "Paper: 1% half-life is too unstable (largest residue); stability rises with half-life.",
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig21 {
        run_half_lives(&Trials::quick(), &[0.01, 0.10])
    }

    /// The 1% half-life over-adapts relative to the 10% choice.
    #[test]
    fn short_half_life_is_unstable() {
        let f = fig();
        let unstable = f.row(0.01);
        let stable = f.row(0.10);
        assert!(
            unstable.total_adaptations.mean > stable.total_adaptations.mean,
            "1%: {} adaptations vs 10%: {}",
            unstable.total_adaptations.mean,
            stable.total_adaptations.mean
        );
    }

    /// Both settings still meet the goal (the controller is robust even
    /// when twitchy); the 10% run is not more conservative.
    #[test]
    fn goals_met_across_half_lives() {
        let f = fig();
        for r in &f.rows {
            assert!(
                r.met_fraction >= 0.5,
                "half-life {} met only {:.0}%",
                r.half_life,
                r.met_fraction * 100.0
            );
        }
    }
}
