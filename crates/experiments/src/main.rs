#![forbid(unsafe_code)]
//! `odyssey-experiments`: regenerate the paper's tables and figures.
//!
//! ```text
//! odyssey-experiments [--trials N] [--seed S] [--quick] [--threads T[,T...]]
//!                     [--reps R] [--out DIR] [IDS...]
//! ```
//!
//! With `--out DIR`, each figure's rendering is also written to
//! `DIR/<id>.txt` (the source material for EXPERIMENTS.md).
//!
//! `IDS` are figure identifiers (`fig2 fig4 fig6 fig8 fig10 fig11 fig13
//! fig14 fig15 fig16 fig18 fig19 fig20 fig21 fig22 sec54 headline`) or
//! `all` (the default). `--quick` runs two trials per data point instead
//! of five.
//!
//! `--threads` sets the worker-thread count for the deterministic fan-out
//! (default: all available cores). Output is byte-identical at any value;
//! use `--threads 1` to bisect a suspected parallelism bug. For the
//! `bench` verb it may be a comma list of counts to sweep.
//!
//! Four extra verbs (not part of `all`):
//! `tracediff` replays each canonical scenario and reports the first
//! event diverging from `tests/golden/`; `tracerec` rewrites the goldens
//! after an intentional behavior change; `bench` times the canonical
//! scenarios across thread counts (`--reps` repetitions each), verifies
//! parallel output digests match serial, and writes `BENCH_sweep.json`
//! (with `--check [BASELINE.json]` it also fails when any scenario's
//! speedup drops more than `--tolerance` below the committed sweep,
//! default `results/BENCH_sweep.json` at 0.30);
//! `serve` replays the longest golden trace through an always-on
//! session at `--multiple` density, kills it at a mid-run checkpoint,
//! resumes, and exits non-zero on any digest or trace divergence
//! (writing the report to `target/serve/divergence.txt`);
//! `energymap` renders the per-call-path energy table of each canonical
//! scenario into `--out` (default `results/`), or with `--check`
//! compares fresh tables against `tests/golden/energymap_*.txt` and
//! exits non-zero naming any path whose energy drifted beyond
//! tolerance; `energymaprec` rewrites those goldens after an
//! intentional energy change.

use experiments::{benchcli, harness::Trials, *};

const ALL: [&str; 20] = [
    "fig2",
    "fig4",
    "fig6",
    "fig8",
    "fig10",
    "fig11",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "sec54",
    "headline",
    "ablate",
    "chaos",
    "supervise",
];

/// Default thread counts the `bench` verb sweeps.
const BENCH_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Default timed repetitions per `bench` cell.
const BENCH_REPS: usize = 3;

/// Default slack for `bench --check`: a scenario's speedup may fall this
/// far below the committed baseline before the gate fails. Speedups are
/// ratios, so the band is machine-portable; it only needs to absorb
/// scheduler noise, not absolute-speed differences between hosts.
const BENCH_TOLERANCE: f64 = 0.30;

/// Default replay multiple for the `serve` verb (the CI soak passes 100).
const SERVE_MULTIPLE: u32 = 1;

/// Default seeded hostile streams for the `fuzz` verb (the CI soak's
/// floor; `--streams` raises it).
const FUZZ_STREAMS: usize = 1000;

fn usage() -> ! {
    eprintln!(
        "usage: odyssey-experiments [--trials N] [--seed S] [--quick] [--threads T[,T...]] [--reps R] [--multiple M] [--scenario NAME] [--sessions N] [--streams N] [--out DIR] [IDS...]\n  IDS: {} | all\n  golden traces: tracediff (compare against tests/golden/) | tracerec (regenerate)\n  benchmarks: bench (time scenarios across --threads counts, write BENCH_sweep.json; --check [BASELINE.json] fails on speedups more than --tolerance below the committed sweep)\n  serving: serve (replay --scenario golden stream at --multiple density through --sessions isolated sessions; kill, resume by replay and by snapshot, fail on divergence)\n  fuzzing: fuzz (drive --streams seeded hostile mutations of the golden stream through isolated sessions; fail on any panic, unsurfaced error, or unstable recovery digest)\n  energy: energymap (write per-call-path energy tables to --out, default results/; with --check, gate against tests/golden/energymap_*.txt) | energymaprec (regenerate those goldens)",
        ALL.join(" ")
    );
    std::process::exit(2)
}

// simlint: allow(P1) — reports wall-clock duration of the serve torture
// run for the operator; the timing never feeds a simulation result
fn run_serve_verb(seed: u64, multiple: u32, scenario: &str, sessions: usize, threads: usize) {
    let sw = bench::Stopwatch::start();
    match serve::run_verb(seed, multiple, scenario, sessions, threads) {
        Ok(summary) => {
            print!("{summary}");
            eprintln!("[serve completed in {:.1}s]", sw.elapsed_s());
        }
        Err(report) => {
            eprintln!("{report}");
            let dir = std::path::PathBuf::from("target/serve");
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = dir.join("divergence.txt");
                if std::fs::write(&path, format!("{report}\n")).is_ok() {
                    eprintln!("serve: divergence report saved to {}", path.display());
                }
            }
            std::process::exit(1);
        }
    }
}

// simlint: allow(P1) — reports wall-clock duration of the fuzz run for
// the operator; the timing never feeds a simulation result
fn run_fuzz_verb(seed: u64, streams: usize, threads: usize, scenario: &str) {
    let sw = bench::Stopwatch::start();
    match fuzz::run_verb(seed, streams, threads, scenario) {
        Ok(summary) => {
            print!("{summary}");
            eprintln!("[fuzz completed in {:.1}s]", sw.elapsed_s());
        }
        Err(failure) => {
            eprintln!("{}", failure.report);
            let dir = std::path::PathBuf::from("target/fuzz");
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = dir.join("failure.txt");
                if std::fs::write(&path, format!("{}\n", failure.report)).is_ok() {
                    eprintln!("fuzz: failure report saved to {}", path.display());
                }
                // Reconstruct the failing stream and the surviving
                // state so CI can archive a reproducer.
                if let Some(i) = failure.stream {
                    if let Ok((text, snap)) = fuzz::failure_artifacts(seed, scenario, i) {
                        let sp = dir.join(format!("stream{i}.txt"));
                        if std::fs::write(&sp, text).is_ok() {
                            eprintln!("fuzz: failing stream saved to {}", sp.display());
                        }
                        if let Some(bytes) = snap {
                            let bp = dir.join(format!("stream{i}.snapshot"));
                            if std::fs::write(&bp, bytes).is_ok() {
                                eprintln!("fuzz: surviving snapshot saved to {}", bp.display());
                            }
                        }
                    }
                }
            }
            std::process::exit(1);
        }
    }
}

fn render(id: &str, trials: &Trials) -> String {
    match id {
        "fig2" => fig2::render(trials),
        "fig4" => fig4::render(),
        "fig6" => fig6::render(trials),
        "fig8" => fig8::render(trials),
        "fig10" => fig10::render(trials),
        "fig11" => fig11::render(trials),
        "fig13" => fig13::render(trials),
        "fig14" => fig14::render(trials),
        "fig15" => fig15::render(trials),
        "fig16" => fig16::render(trials),
        "fig18" => fig18::render(trials),
        "fig19" => fig19::render(trials),
        "fig20" => fig20::render(trials),
        "fig21" => fig21::render(trials),
        "fig22" => fig22::render(trials),
        "sec54" => sec54::render(trials),
        "headline" => headline::render(trials),
        "ablate" => ablate::render(trials),
        "chaos" => chaos::render(trials),
        "supervise" => supervise::render(trials),
        other => {
            eprintln!("unknown experiment: {other}");
            usage()
        }
    }
}

// simlint: allow(P1) — the bench verb exists to time real execution;
// wall-clock reach is its contract, and it stops at this boundary
fn run_bench_verb(
    trials: &Trials,
    thread_counts: &[usize],
    reps: usize,
    out: Option<&std::path::Path>,
    check: Option<&std::path::Path>,
    tolerance: f64,
) {
    let sw = bench::Stopwatch::start();
    let outcome = benchcli::run_sweep(trials, thread_counts, reps);
    print!("{}", bench::sweep::render_sweep_table(&outcome.records));
    let json = bench::sweep::render_sweep_json(&outcome.records);
    let path = out
        .map(|d| d.join("BENCH_sweep.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_sweep.json"));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    eprintln!(
        "[bench completed in {:.1}s, wrote {}]",
        sw.elapsed_s(),
        path.display()
    );
    if !outcome.divergent.is_empty() {
        eprintln!(
            "DETERMINISM FAILURE: parallel output diverged from serial: {}",
            outcome.divergent.join(", ")
        );
        std::process::exit(1);
    }
    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "bench --check: cannot read {}: {e}",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        };
        let baseline = match bench::sweep::parse_sweep_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "bench --check: cannot parse {}: {e}",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        };
        let regressions = bench::sweep::speedup_regressions(&outcome.records, &baseline, tolerance);
        if !regressions.is_empty() {
            eprintln!(
                "SPEEDUP REGRESSION vs {} (tolerance {tolerance:.2}):",
                baseline_path.display()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "[bench check OK: no speedup regression vs {} within tolerance {tolerance:.2}]",
            baseline_path.display()
        );
    }
}

// simlint: allow(P1) — the CLI prints per-figure wall time for the
// operator; figure bytes come from the deterministic render alone
fn main() {
    let mut trials = Trials::default().with_threads(simcore::par::available_threads());
    let mut thread_counts: Option<Vec<usize>> = None;
    let mut reps = BENCH_REPS;
    let mut multiple = SERVE_MULTIPLE;
    let mut scenario = serve::REPLAY_SCENARIO.to_string();
    let mut sessions = 1usize;
    let mut streams = FUZZ_STREAMS;
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut check: Option<std::path::PathBuf> = None;
    let mut tolerance = BENCH_TOLERANCE;
    let mut inflate_decode = 1.0f64;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let n = args.next().unwrap_or_else(|| usage());
                trials.n = n.parse().unwrap_or_else(|_| usage());
                if trials.n == 0 {
                    eprintln!("--trials must be at least 1");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage());
                trials.seed = s.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let t = args.next().unwrap_or_else(|| usage());
                let counts: Vec<usize> = t
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if counts.is_empty() || counts.contains(&0) {
                    eprintln!("--threads wants positive counts (e.g. 4 or 1,2,4,8)");
                    std::process::exit(2);
                }
                thread_counts = Some(counts);
            }
            "--reps" => {
                let r = args.next().unwrap_or_else(|| usage());
                reps = r.parse().unwrap_or_else(|_| usage());
                if reps == 0 {
                    eprintln!("--reps must be at least 1");
                    std::process::exit(2);
                }
            }
            "--multiple" => {
                let m = args.next().unwrap_or_else(|| usage());
                multiple = m.parse().unwrap_or_else(|_| usage());
                if multiple == 0 {
                    eprintln!("--multiple must be at least 1");
                    std::process::exit(2);
                }
            }
            "--scenario" => {
                scenario = args.next().unwrap_or_else(|| usage());
            }
            "--sessions" => {
                let n = args.next().unwrap_or_else(|| usage());
                sessions = n.parse().unwrap_or_else(|_| usage());
                if sessions == 0 {
                    eprintln!("--sessions must be at least 1");
                    std::process::exit(2);
                }
            }
            "--streams" => {
                let n = args.next().unwrap_or_else(|| usage());
                streams = n.parse().unwrap_or_else(|_| usage());
                if streams == 0 {
                    eprintln!("--streams must be at least 1");
                    std::process::exit(2);
                }
            }
            "--out" => {
                let d = args.next().unwrap_or_else(|| usage());
                out_dir = Some(std::path::PathBuf::from(d));
            }
            "--check" => {
                // The baseline path is optional: a following `.json`
                // argument names it, otherwise the committed sweep is
                // the reference.
                let path = match args.peek() {
                    Some(p) if p.ends_with(".json") => args.next().unwrap_or_else(|| usage()),
                    _ => "results/BENCH_sweep.json".to_string(),
                };
                check = Some(std::path::PathBuf::from(path));
            }
            "--tolerance" => {
                let t = args.next().unwrap_or_else(|| usage());
                tolerance = t.parse().unwrap_or_else(|_| usage());
                if !tolerance.is_finite() || tolerance < 0.0 {
                    eprintln!("--tolerance wants a finite non-negative speedup delta");
                    std::process::exit(2);
                }
            }
            // Undocumented test hook: scales the video decode block so
            // the energy-regression gate's negative path is exercisable
            // from the CLI (tests/energy_regression.rs drives it).
            "--inflate-decode" => {
                let r = args.next().unwrap_or_else(|| usage());
                inflate_decode = r.parse().unwrap_or_else(|_| usage());
                if !inflate_decode.is_finite() || inflate_decode <= 0.0 {
                    eprintln!("--inflate-decode wants a finite positive ratio");
                    std::process::exit(2);
                }
            }
            "--quick" => trials = Trials { n: 2, ..trials },
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    // Regular runs use one thread count; `bench` sweeps the whole list.
    if let Some(counts) = &thread_counts {
        trials = trials.with_threads(*counts.iter().max().unwrap_or(&1));
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    // Special verbs run serially, outside the figure fan-out.
    ids.retain(|id| match id.as_str() {
        "tracerec" => {
            match tracerec::regenerate() {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            false
        }
        "tracediff" => {
            match tracerec::check_all() {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    std::process::exit(1);
                }
            }
            false
        }
        "bench" => {
            run_bench_verb(
                &trials,
                thread_counts.as_deref().unwrap_or(&BENCH_THREADS),
                reps,
                out_dir.as_deref(),
                check.as_deref(),
                tolerance,
            );
            false
        }
        "serve" => {
            run_serve_verb(trials.seed, multiple, &scenario, sessions, trials.threads);
            false
        }
        "fuzz" => {
            run_fuzz_verb(trials.seed, streams, trials.threads, &scenario);
            false
        }
        "energymap" => {
            if check.is_some() {
                match energymap::check_all(inflate_decode) {
                    Ok(summary) => print!("{summary}"),
                    Err(report) => {
                        eprintln!("{report}");
                        std::process::exit(1);
                    }
                }
            } else {
                let dir = out_dir
                    .clone()
                    .unwrap_or_else(|| std::path::PathBuf::from("results"));
                match energymap::write_results(&dir, trials.threads) {
                    Ok(text) => print!("{text}"),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
            }
            false
        }
        "energymaprec" => {
            match energymap::regenerate() {
                Ok(summary) => print!("{summary}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            false
        }
        _ => true,
    });

    // Validate before spending any simulation time.
    for id in &ids {
        if !ALL.contains(&id.as_str()) {
            eprintln!("unknown experiment: {id}");
            usage();
        }
    }

    // Fan the figures out across workers; print in request order. Each
    // figure's own trial fan-out shares the same thread budget, so the
    // pool is never oversubscribed by more than one scope level.
    let outputs = simcore::par::map(trials.threads, &ids, |_, id| {
        let sw = bench::Stopwatch::start();
        let output = render(id, &trials);
        (output, sw.elapsed_s())
    });
    for (id, (output, elapsed_s)) in ids.iter().zip(&outputs) {
        println!("{output}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, output) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        eprintln!("[{id} completed in {elapsed_s:.1}s]");
    }
}
