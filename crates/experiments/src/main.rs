#![forbid(unsafe_code)]
//! `odyssey-experiments`: regenerate the paper's tables and figures.
//!
//! ```text
//! odyssey-experiments [--trials N] [--seed S] [--quick] [--out DIR] [IDS...]
//! ```
//!
//! With `--out DIR`, each figure's rendering is also written to
//! `DIR/<id>.txt` (the source material for EXPERIMENTS.md).
//!
//! `IDS` are figure identifiers (`fig2 fig4 fig6 fig8 fig10 fig11 fig13
//! fig14 fig15 fig16 fig18 fig19 fig20 fig21 fig22 sec54 headline`) or
//! `all` (the default). `--quick` runs two trials per data point instead
//! of five.
//!
//! Two extra verbs (not part of `all`) manage the simtrace goldens:
//! `tracediff` replays each canonical scenario and reports the first
//! event diverging from `tests/golden/`; `tracerec` rewrites the goldens
//! after an intentional behavior change.

use experiments::{harness::Trials, *};

const ALL: [&str; 20] = [
    "fig2",
    "fig4",
    "fig6",
    "fig8",
    "fig10",
    "fig11",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "sec54",
    "headline",
    "ablate",
    "chaos",
    "supervise",
];

fn usage() -> ! {
    eprintln!(
        "usage: odyssey-experiments [--trials N] [--seed S] [--quick] [--out DIR] [IDS...]\n  IDS: {} | all\n  golden traces: tracediff (compare against tests/golden/) | tracerec (regenerate)",
        ALL.join(" ")
    );
    std::process::exit(2)
}

fn main() {
    let mut trials = Trials::default();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let n = args.next().unwrap_or_else(|| usage());
                trials.n = n.parse().unwrap_or_else(|_| usage());
                if trials.n == 0 {
                    eprintln!("--trials must be at least 1");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                let s = args.next().unwrap_or_else(|| usage());
                trials.seed = s.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                let d = args.next().unwrap_or_else(|| usage());
                out_dir = Some(std::path::PathBuf::from(d));
            }
            "--quick" => trials = Trials { n: 2, ..trials },
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let started = bench::Stopwatch::start();
        let output = match id.as_str() {
            "fig2" => fig2::render(&trials),
            "fig4" => fig4::render(),
            "fig6" => fig6::render(&trials),
            "fig8" => fig8::render(&trials),
            "fig10" => fig10::render(&trials),
            "fig11" => fig11::render(&trials),
            "fig13" => fig13::render(&trials),
            "fig14" => fig14::render(&trials),
            "fig15" => fig15::render(&trials),
            "fig16" => fig16::render(&trials),
            "fig18" => fig18::render(&trials),
            "fig19" => fig19::render(&trials),
            "fig20" => fig20::render(&trials),
            "fig21" => fig21::render(&trials),
            "fig22" => fig22::render(&trials),
            "sec54" => sec54::render(&trials),
            "headline" => headline::render(&trials),
            "ablate" => ablate::render(&trials),
            "chaos" => chaos::render(&trials),
            "supervise" => supervise::render(&trials),
            "tracerec" => match tracerec::regenerate() {
                Ok(summary) => summary,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            },
            "tracediff" => match tracerec::check_all() {
                Ok(summary) => summary,
                Err(report) => {
                    eprintln!("{report}");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("unknown experiment: {other}");
                usage()
            }
        };
        println!("{output}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, &output) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
        eprintln!("[{id} completed in {:.1}s]", started.elapsed_s());
    }
}
