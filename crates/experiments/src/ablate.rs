//! Ablations of the goal-directed controller's design choices.
//!
//! Section 5.1.3 motivates three mechanisms without quantifying them:
//! the hysteresis margin ("a guard against excessive adaptation due to
//! energy transients"), the 15-second cap on fidelity improvements
//! ("applications should not be jarred by frequent adaptations"), and the
//! priority order (degrade the least important application first). This
//! module removes each in turn and measures what it was buying:
//!
//! - **no hysteresis** — upgrades trigger the instant supply exceeds
//!   demand, so the system oscillates (more adaptations);
//! - **no upgrade cap** — improvements arrive in bursts;
//! - **reversed priorities** — the high-priority web application is
//!   degraded first and spends the run at lower fidelity;
//! - **no superlinearity** — the platform power model's correction term
//!   removed, shifting every anchor.

use hw560x::{DeviceStates, PlatformPower, PlatformSpec};
use odyssey::GoalConfig;
use simcore::{SimDuration, SimRng};

use crate::fig19::INITIAL_ENERGY_J;
use crate::goalrig::{run_composite_goal_custom, GoalRun};
use crate::harness::Trials;
use crate::table::Table;

/// Goal used by the controller ablations, seconds.
pub const GOAL_S: u64 = 1440;

/// One controller-ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant name.
    pub variant: &'static str,
    /// Whether the goal was met.
    pub goal_met: bool,
    /// Residual energy, J.
    pub residual_j: f64,
    /// Total fidelity changes across applications.
    pub total_adaptations: usize,
    /// Upgrades issued by the controller.
    pub upgrades: usize,
    /// Mean normalized fidelity of the web application (ladder depth 5).
    pub web_mean_level: f64,
}

/// The ablation study.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Controller rows: paper, no-hysteresis, no-upgrade-cap, reversed.
    pub rows: Vec<AblationRow>,
    /// Full-on platform power with / without the superlinearity term, W.
    pub superlinearity: (f64, f64),
}

impl Ablation {
    /// Looks up a row by variant name.
    ///
    /// # Panics
    ///
    /// Panics if absent.
    pub fn row(&self, variant: &str) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.variant == variant)
            .unwrap_or_else(|| panic!("no variant {variant}"))
    }
}

fn summarize(variant: &'static str, run: &GoalRun) -> AblationRow {
    let total: usize = ["speech", "xanim", "anvil", "netscape"]
        .iter()
        .map(|a| run.adaptations_of(a))
        .sum();
    let web = run
        .report
        .fidelity
        .iter()
        .find(|s| s.name() == "netscape")
        // simlint: allow(D5) — the goalrig machine always registers the netscape workload
        .expect("web series");
    let pts = web.resample(SimDuration::from_secs(10), run.report.end);
    let web_mean_level = if pts.is_empty() {
        0.0
    } else {
        pts.iter().map(|(_, v)| v / 4.0).sum::<f64>() / pts.len() as f64
    };
    AblationRow {
        variant,
        goal_met: run.outcome.goal_met,
        residual_j: run.report.residual_j,
        total_adaptations: total,
        upgrades: run.outcome.upgrades,
        web_mean_level,
    }
}

/// Runs the ablation study.
pub fn run(trials: &Trials) -> Ablation {
    let root = SimRng::new(trials.seed);
    let goal = SimDuration::from_secs(GOAL_S);
    let base_cfg = || GoalConfig::paper(INITIAL_ENERGY_J, goal);
    let mut rows = Vec::new();

    let mut rng = root.fork("ablate/paper");
    rows.push(summarize(
        "Paper controller",
        &run_composite_goal_custom(base_cfg(), false, &mut rng),
    ));

    let mut cfg = base_cfg();
    cfg.hysteresis_supply_frac = 0.0;
    cfg.hysteresis_initial_frac = 0.0;
    let mut rng = root.fork("ablate/no-hysteresis");
    rows.push(summarize(
        "No hysteresis",
        &run_composite_goal_custom(cfg, false, &mut rng),
    ));

    let mut cfg = base_cfg();
    cfg.upgrade_min_interval = SimDuration::from_millis(500);
    let mut rng = root.fork("ablate/no-cap");
    rows.push(summarize(
        "No upgrade rate cap",
        &run_composite_goal_custom(cfg, false, &mut rng),
    ));

    let mut rng = root.fork("ablate/reversed");
    rows.push(summarize(
        "Reversed priorities",
        &run_composite_goal_custom(base_cfg(), true, &mut rng),
    ));

    // Power-model ablation: the superlinearity term.
    let with =
        PlatformPower::new(PlatformSpec::thinkpad_560x()).power_w(&DeviceStates::full_on_idle());
    let without = PlatformPower::new(PlatformSpec::thinkpad_560x().without_superlinearity())
        .power_w(&DeviceStates::full_on_idle());
    Ablation {
        rows,
        superlinearity: (with, without),
    }
}

/// Renders the ablation table.
pub fn render(trials: &Trials) -> String {
    let a = run(trials);
    let mut t = Table::new(
        format!("Controller ablations (goal {GOAL_S}s, {INITIAL_ENERGY_J:.0} J)"),
        &[
            "Variant",
            "Goal Met",
            "Residual (J)",
            "Adaptations",
            "Upgrades",
            "Web mean fidelity",
        ],
    );
    for r in &a.rows {
        t.push_row(vec![
            r.variant.to_string(),
            if r.goal_met { "Yes" } else { "No" }.to_string(),
            format!("{:.0}", r.residual_j),
            r.total_adaptations.to_string(),
            r.upgrades.to_string(),
            format!("{:.2}", r.web_mean_level),
        ]);
    }
    t.with_caption(format!(
        "Power-model ablation: full-on power {:.2} W with superlinearity, {:.2} W without.",
        a.superlinearity.0, a.superlinearity.1
    ))
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> Ablation {
        run(&Trials::single())
    }

    /// Removing hysteresis or the upgrade cap destabilizes the
    /// controller: strictly more fidelity changes than the paper's
    /// configuration.
    #[test]
    fn hysteresis_and_cap_buy_stability() {
        let a = study();
        let paper = a.row("Paper controller").total_adaptations;
        let no_hys = a.row("No hysteresis").total_adaptations;
        let no_cap = a.row("No upgrade rate cap").total_adaptations;
        assert!(
            no_hys > paper,
            "no-hysteresis {no_hys} not above paper {paper}"
        );
        assert!(no_cap > paper, "no-cap {no_cap} not above paper {paper}");
    }

    /// Reversing priorities pushes the web application — highest priority
    /// in the paper's order — to a lower average fidelity.
    #[test]
    fn priorities_protect_the_web_application() {
        let a = study();
        let paper = a.row("Paper controller").web_mean_level;
        let reversed = a.row("Reversed priorities").web_mean_level;
        assert!(
            reversed < paper,
            "reversed web fidelity {reversed} not below paper {paper}"
        );
    }

    /// Every variant still meets the goal — the mechanisms are about
    /// user experience, not feasibility.
    #[test]
    fn all_variants_meet_the_goal() {
        for r in &study().rows {
            assert!(r.goal_met, "{} missed the goal", r.variant);
        }
    }

    /// The superlinearity term is worth ~0.21 W at full-on.
    #[test]
    fn superlinearity_magnitude() {
        let a = study();
        let delta = a.superlinearity.0 - a.superlinearity.1;
        assert!((delta - 0.21).abs() < 0.01, "delta {delta}");
    }
}
