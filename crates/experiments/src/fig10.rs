//! Figure 10: energy impact of fidelity for map viewing.
//!
//! Four city maps × seven bars: baseline, hardware-only, two filter
//! levels, cropping, and cropping combined with each filter — all at the
//! default five-second think time.

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{MapObject, MAPS};
use odyssey_apps::map::{MapFilter, MapViewer};
use odyssey_apps::MapFidelity;
use simcore::{SimDuration, SimRng};

use crate::barchart::BarChart;
use crate::harness::{run_trials, Trials};

/// The seven experimental conditions, in figure order.
pub fn conditions() -> Vec<(&'static str, MapFidelity, bool)> {
    let f = |filter, cropped| MapFidelity { filter, cropped };
    vec![
        ("Baseline", MapFidelity::full(), false),
        ("Hardware-Only Power Mgmt.", MapFidelity::full(), true),
        ("Minor Road Filter", f(MapFilter::Minor, false), true),
        (
            "Secondary Road Filter",
            f(MapFilter::Secondary, false),
            true,
        ),
        ("Cropped", f(MapFilter::None, true), true),
        ("Cropped-Minor", f(MapFilter::Minor, true), true),
        ("Cropped-Secondary", f(MapFilter::Secondary, true), true),
    ]
}

fn build(
    map: MapObject,
    fidelity: MapFidelity,
    pm: bool,
    think_s: f64,
    rng: &mut SimRng,
) -> Machine {
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(
        MapViewer::fixed(vec![map], fidelity, rng)
            .with_think_time(SimDuration::from_secs_f64(think_s)),
    ));
    m
}

/// Runs the full figure at a given think time (Figure 10 uses 5 s).
pub fn run_at_think(trials: &Trials, think_s: f64) -> BarChart {
    // The paper uses ten trials (twice the video/speech count) for this
    // application; scale whatever the caller asked for accordingly.
    let trials = &Trials {
        n: trials.n * 2,
        ..*trials
    };
    let mut chart = BarChart::new(format!(
        "Figure 10: Energy impact of fidelity for map viewing (J, think={think_s}s)"
    ));
    for map in &MAPS {
        for (name, fidelity, pm) in conditions() {
            let label = format!("fig10/{}/{}", map.name, name);
            let reports = run_trials(trials, &label, |rng| {
                build(*map, fidelity, pm, think_s, rng)
            });
            chart.push(map.name, name, &reports);
        }
    }
    chart
}

/// Runs the figure at the default 5-second think time.
pub fn run(trials: &Trials) -> BarChart {
    run_at_think(trials, 5.0)
}

/// Renders the figure as a table.
pub fn render(trials: &Trials) -> String {
    run(trials).to_table().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        run(&Trials::quick())
    }

    /// Paper: hardware-only PM reduces map energy by about 9-19%.
    #[test]
    fn hw_only_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Hardware-Only Power Mgmt.", "Baseline");
        assert!(lo > 5.0 && hi < 25.0, "hw-only band {lo}-{hi}%");
    }

    /// Paper: minor road filter saves 6-51% vs hardware-only, with wide
    /// variation across maps.
    #[test]
    fn minor_filter_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Minor Road Filter", "Hardware-Only Power Mgmt.");
        assert!(lo > 2.0 && lo < 20.0, "minor filter low end {lo}%");
        assert!(hi > 25.0 && hi < 60.0, "minor filter high end {hi}%");
    }

    /// Paper: secondary filter saves 23-55% vs hardware-only.
    #[test]
    fn secondary_filter_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Secondary Road Filter", "Hardware-Only Power Mgmt.");
        assert!(lo > 12.0 && hi < 65.0, "secondary band {lo}-{hi}%");
    }

    /// Paper: cropping alone saves 14-49% — "less effective than
    /// filtering for these samples".
    #[test]
    fn crop_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Cropped", "Hardware-Only Power Mgmt.");
        assert!(lo > 8.0 && hi < 60.0, "crop band {lo}-{hi}%");
    }

    /// Paper: combined filter+crop saves 36-66% vs hardware-only and
    /// 46-70% vs baseline.
    #[test]
    fn combined_bands() {
        let c = chart();
        let (lo, hi) = c.saving_band("Cropped-Secondary", "Hardware-Only Power Mgmt.");
        assert!(lo > 25.0 && hi < 75.0, "combined vs hw {lo}-{hi}%");
        let (lo_b, hi_b) = c.saving_band("Cropped-Secondary", "Baseline");
        assert!(
            lo_b > 35.0 && hi_b < 80.0,
            "combined vs baseline {lo_b}-{hi_b}%"
        );
    }
}
