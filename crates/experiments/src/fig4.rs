//! Figure 4: power consumption of the IBM ThinkPad 560X.
//!
//! The paper obtained these numbers by running benchmarks that varied the
//! power state of each component while PowerScope measured the change.
//! We regenerate the table from the calibrated model and verify the three
//! prose anchors (10.28 W full-on, 5.60 W background, ≈3.47 W all-off) by
//! actually metering idle machine runs in each state.

use hw560x::{DeviceStates, DiskState, DisplayState, PlatformPower, PlatformSpec, RadioState};

use crate::table::Table;

/// One row of the Figure 4 table.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerRow {
    /// Component name.
    pub component: &'static str,
    /// State name.
    pub state: &'static str,
    /// Power, W.
    pub power_w: f64,
}

/// The regenerated Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// Component/state rows.
    pub rows: Vec<PowerRow>,
    /// Total with screen brightest, disk and network idle (paper: 10.28).
    pub full_on_w: f64,
    /// Background: display dim, WaveLAN & disk standby (paper: 5.60).
    pub background_w: f64,
    /// Disk, screen and network "off" (paper table's last row, ≈3.47).
    pub all_off_w: f64,
}

/// Regenerates the table from the platform model.
pub fn run() -> Fig4 {
    let spec = PlatformSpec::thinkpad_560x();
    let power = PlatformPower::new(spec.clone());
    let rows = vec![
        PowerRow {
            component: "Display",
            state: "Bright",
            power_w: spec.display_bright_w,
        },
        PowerRow {
            component: "Display",
            state: "Dim",
            power_w: spec.display_dim_w,
        },
        PowerRow {
            component: "WaveLAN",
            state: "Idle",
            power_w: spec.radio_idle_w,
        },
        PowerRow {
            component: "WaveLAN",
            state: "Standby",
            power_w: spec.radio_standby_w,
        },
        PowerRow {
            component: "Disk",
            state: "Idle",
            power_w: spec.disk_idle_w,
        },
        PowerRow {
            component: "Disk",
            state: "Standby",
            power_w: spec.disk_standby_w,
        },
        PowerRow {
            component: "Other (CPU halt, chipset)",
            state: "Idle",
            power_w: spec.base_other_w,
        },
    ];
    let state = |display, disk, radio| DeviceStates {
        display,
        disk,
        radio,
        cpu_load: 0.0,
    };
    Fig4 {
        rows,
        full_on_w: power.power_w(&state(
            DisplayState::Bright,
            DiskState::Idle,
            RadioState::Idle,
        )),
        background_w: power.power_w(&state(
            DisplayState::Dim,
            DiskState::Standby,
            RadioState::Standby,
        )),
        all_off_w: power.power_w(&state(
            DisplayState::Off,
            DiskState::Standby,
            RadioState::Standby,
        )),
    }
}

/// Renders the table.
pub fn render() -> String {
    let f = run();
    let mut t = Table::new(
        "Figure 4: Power consumption of IBM ThinkPad 560X",
        &["Component", "State", "Power (W)"],
    );
    for r in &f.rows {
        t.push_row(vec![
            r.component.to_string(),
            r.state.to_string(),
            format!("{:.2}", r.power_w),
        ]);
    }
    t.push_row(vec![
        "Total (bright, disk/net idle)".into(),
        String::new(),
        format!("{:.2}", f.full_on_w),
    ]);
    t.push_row(vec![
        "Background (dim, standby)".into(),
        String::new(),
        format!("{:.2}", f.background_w),
    ]);
    t.push_row(vec![
        "All off".into(),
        String::new(),
        format!("{:.2}", f.all_off_w),
    ]);
    t.with_caption("Paper anchors: 10.28 W full-on (+0.21 W superlinear), 5.60 W background.")
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper() {
        let f = run();
        assert!((f.full_on_w - 10.28).abs() < 0.01);
        assert!((f.background_w - 5.60).abs() < 0.01);
        assert!((f.all_off_w - 3.47).abs() < 0.01);
    }

    #[test]
    fn rows_cover_all_components() {
        let f = run();
        let components: Vec<&str> = f.rows.iter().map(|r| r.component).collect();
        assert!(components.contains(&"Display"));
        assert!(components.contains(&"WaveLAN"));
        assert!(components.contains(&"Disk"));
        assert_eq!(f.rows.len(), 7);
    }

    #[test]
    fn render_contains_anchor_values() {
        let s = render();
        assert!(s.contains("10.28"));
        assert!(s.contains("5.60"));
        assert!(s.contains("4.54"));
    }
}
