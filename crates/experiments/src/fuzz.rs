//! The `fuzz` verb: deterministic hostile-input fuzzing of the serving
//! layer.
//!
//! Each of N seeded streams starts from a golden sample schedule and is
//! mutated by a fork of the root rng — bit flips inside the raw `f64`
//! timestamps (NaN, negatives, denormals, far-future times), truncation,
//! duplication, reordering, spliced crosstalk from a *different* golden
//! scenario, and floods of hostile reconfiguration commands (NaN
//! budgets, zero horizons, out-of-range process indices). Every stream
//! is then driven through the serving layer under one of three rotating
//! harnesses:
//!
//! 1. **determinism** — the same hostile stream twice through two
//!    fresh sessions; digests, dead-letter totals, and ledger bounds
//!    must agree;
//! 2. **recovery** — freeze mid-stream, thaw into a fresh shell, finish
//!    the stream there; the recovered digest must equal the
//!    uninterrupted one (falling back to full replay when the freeze
//!    itself is refused);
//! 3. **crosstalk** — a two-slot [`Server`] interleaving the hostile
//!    stream with a clean one; the clean slot must end byte-identical
//!    to a solo clean run, proving slot isolation under attack.
//!
//! The harness fails on any panic (contained or not), any invariant the
//! session does not surface as a `Result`, any ledger exceeding its
//! bound, or any recovery digest instability. Failures carry the root
//! seed, stream index, and mutation list — enough to replay the exact
//! stream — and the CLI saves them (plus the mutated stream and a
//! snapshot of the surviving state) under `target/fuzz/` for CI upload.

use std::panic::{catch_unwind, AssertUnwindSafe};

use simcore::{SimDuration, SimRng, SimTime};
use simserve::{ReconfigCommand, Sample, ServeError, Server, Session, SessionHealth};

use crate::serve;

/// Batch size hostile streams are fed in (matches the serve verb).
const BATCH: usize = 64;

/// Mutations applied per stream: at least one, at most this many.
const MAX_MUTATIONS: u64 = 4;

/// What one surviving stream reports back for aggregation.
#[derive(Clone, Copy, Debug, Default)]
struct StreamStats {
    samples: usize,
    dead_letters: u64,
    ingest_errors: u64,
    max_ledger_len: usize,
    froze: bool,
}

/// Outcome of feeding one hostile stream through a raw session:
/// everything needed for the cross-run comparisons, plus the frozen
/// snapshot when a mid-stream freeze was requested and granted.
struct HostileRun {
    digest: u64,
    dead_total: u64,
    ingest_errors: u64,
    max_ledger_len: usize,
    finished_cleanly: bool,
}

/// Names of the mutation operators, indexed by the rng draw.
const MUTATION_NAMES: [&str; 6] = [
    "bit-flip",
    "truncate",
    "duplicate",
    "reorder",
    "crosstalk-splice",
    "reconfig-flood",
];

/// Applies one seeded mutation to `samples`, splicing from `alt` for
/// the crosstalk operator. Returns the operator's name.
fn mutate_once(samples: &mut Vec<Sample>, alt: &[Sample], rng: &mut SimRng) -> &'static str {
    let op = rng.uniform_u64(0, MUTATION_NAMES.len() as u64 - 1) as usize;
    let len = samples.len();
    match op {
        // Flip one raw bit of one timestamp: NaN, sign, exponent —
        // whatever the bit position yields.
        0 => {
            if let Some(s) = pick_mut(samples, rng) {
                let bit = rng.uniform_u64(0, 63);
                s.at_s = f64::from_bits(s.at_s.to_bits() ^ (1u64 << bit));
            }
        }
        // Drop the tail.
        1 => {
            if len > 1 {
                let keep = rng.uniform_u64(1, len as u64 - 1) as usize;
                samples.truncate(keep);
            }
        }
        // Duplicate a window in place (stutter: repeated timestamps).
        2 => {
            if len > 0 {
                let start = rng.uniform_u64(0, len as u64 - 1) as usize;
                let width = rng.uniform_u64(1, 16).min((len - start) as u64) as usize;
                let window: Vec<Sample> = samples
                    .get(start..start + width)
                    .map(<[Sample]>::to_vec)
                    .unwrap_or_default();
                let at = (start + width).min(samples.len());
                samples.splice(at..at, window);
            }
        }
        // Swap two windows: out-of-order timestamps.
        3 => {
            if len > 3 {
                let a = rng.uniform_u64(0, len as u64 - 2) as usize;
                let b = rng.uniform_u64(0, len as u64 - 2) as usize;
                samples.swap(a, b);
                samples.swap(a + 1, b + 1);
            }
        }
        // Splice a window from a different scenario's schedule: times
        // from a foreign clock, mid-stream.
        4 => {
            if !alt.is_empty() && len > 0 {
                let from = rng.uniform_u64(0, alt.len() as u64 - 1) as usize;
                let width = rng.uniform_u64(1, 32).min((alt.len() - from) as u64) as usize;
                let window: Vec<Sample> = alt
                    .get(from..from + width)
                    .map(<[Sample]>::to_vec)
                    .unwrap_or_default();
                let at = rng.uniform_u64(0, len as u64) as usize;
                samples.splice(at..at, window);
            }
        }
        // Flood of hostile reconfiguration commands at one instant.
        _ => {
            if len > 0 {
                let at = rng.uniform_u64(0, len as u64 - 1) as usize;
                let t = samples.get(at).map(|s| s.at_s).unwrap_or(0.0);
                let burst = rng.uniform_u64(4, 24);
                let mut flood = Vec::with_capacity(burst as usize);
                for k in 0..burst {
                    let cmd = match rng.uniform_u64(0, 4) {
                        0 => ReconfigCommand::BudgetJ(f64::NAN),
                        1 => ReconfigCommand::BudgetJ(-1e18),
                        2 => ReconfigCommand::Horizon(SimTime::ZERO),
                        3 => ReconfigCommand::Quarantine(usize::MAX),
                        _ => ReconfigCommand::Goal(SimDuration::from_micros(k)),
                    };
                    flood.push(Sample::reconfig(t, cmd).from_origin(k as usize % 5));
                }
                let at = at.min(samples.len());
                samples.splice(at..at, flood);
            }
        }
    }
    MUTATION_NAMES.get(op).copied().unwrap_or("unknown")
}

/// One uniformly chosen mutable sample, `None` for an empty stream.
fn pick_mut<'a>(samples: &'a mut [Sample], rng: &mut SimRng) -> Option<&'a mut Sample> {
    if samples.is_empty() {
        return None;
    }
    let i = rng.uniform_u64(0, samples.len() as u64 - 1) as usize;
    samples.get_mut(i)
}

/// Builds the hostile stream for index `i`: a seeded fork of the root
/// rng applies 1..=[`MAX_MUTATIONS`] operators to the golden schedule.
pub fn hostile_stream(
    seed: u64,
    base: &[Sample],
    alt: &[Sample],
    i: u64,
) -> (Vec<Sample>, Vec<&'static str>) {
    let mut rng = SimRng::new(seed).fork_indexed("fuzz/stream", i);
    let mut samples = base.to_vec();
    let n = rng.uniform_u64(1, MAX_MUTATIONS);
    let mut applied = Vec::with_capacity(n as usize);
    for _ in 0..n {
        applied.push(mutate_once(&mut samples, alt, &mut rng));
    }
    (samples, applied)
}

/// Feeds `samples` through a fresh session at `seed`, catching panics.
/// `freeze_at_chunk` freezes mid-stream and continues in a thawed twin
/// — the recovery path under hostile input. Ingest errors end feeding
/// (errors must be surfaced, not fatal); panics are failures.
fn drive(
    seed: u64,
    samples: &[Sample],
    freeze_at_chunk: Option<usize>,
) -> Result<HostileRun, String> {
    let mut session = build(seed)?;
    let mut ingest_errors = 0u64;
    let mut max_ledger_len = 0usize;
    let mut stopped = false;
    for (ci, chunk) in samples.chunks(BATCH).enumerate() {
        if Some(ci) == freeze_at_chunk && !stopped {
            // Recovery pivot: freeze, thaw into a fresh shell, and keep
            // serving there. A refused freeze falls back to continuing
            // in place — the caller compares digests either way.
            if let Ok(bytes) = session.freeze() {
                let mut twin = build(seed)?;
                twin.thaw(&bytes)
                    .map_err(|e| format!("thaw of own freeze failed: {e}"))?;
                session = twin;
            }
        }
        if !stopped {
            match guarded_ingest(&mut session, chunk)? {
                Ok(_) => {}
                Err(_) => {
                    // Surfaced as a Result: exactly the contract. The
                    // session refuses further input in this state.
                    ingest_errors += 1;
                    stopped = true;
                }
            }
        }
        if let Some(d) = session.dead_letters() {
            if d.len() > d.capacity() {
                return Err(format!(
                    "dead-letter ledger exceeded its bound: {} > {}",
                    d.len(),
                    d.capacity()
                ));
            }
            max_ledger_len = max_ledger_len.max(d.len());
        }
    }
    let finished_cleanly = if stopped {
        false
    } else {
        guarded_finish(&mut session)?.is_ok()
    };
    Ok(HostileRun {
        digest: session.digest(),
        dead_total: session.dead_letters().map(|d| d.total()).unwrap_or(0),
        ingest_errors,
        max_ledger_len,
        finished_cleanly,
    })
}

fn build(seed: u64) -> Result<Session, String> {
    serve::build_session(seed).map_err(|e| format!("fuzz: session build failed: {e}"))
}

/// `ingest` with panic containment: the outer `Err` is a panic (a fuzz
/// failure), the inner `Result` is the session's own verdict.
fn guarded_ingest(
    session: &mut Session,
    chunk: &[Sample],
) -> Result<Result<usize, ServeError>, String> {
    catch_unwind(AssertUnwindSafe(|| session.ingest(chunk).map(|d| d.len())))
        .map_err(|p| format!("PANIC during ingest: {}", panic_text(&p)))
}

fn guarded_finish(session: &mut Session) -> Result<Result<(), ServeError>, String> {
    catch_unwind(AssertUnwindSafe(|| session.finish().map(|_| ())))
        .map_err(|p| format!("PANIC during finish: {}", panic_text(&p)))
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Harness 1: the hostile stream is deterministic — two fresh sessions,
/// identical digests and accounting.
fn check_determinism(seed: u64, samples: &[Sample]) -> Result<StreamStats, String> {
    let a = drive(seed, samples, None)?;
    let b = drive(seed, samples, None)?;
    if a.digest != b.digest
        || a.dead_total != b.dead_total
        || a.ingest_errors != b.ingest_errors
        || a.finished_cleanly != b.finished_cleanly
    {
        return Err(format!(
            "hostile stream is nondeterministic: digest {:#018x}/{:#018x}, dead {}/{}, errors {}/{}",
            a.digest, b.digest, a.dead_total, b.dead_total, a.ingest_errors, b.ingest_errors
        ));
    }
    Ok(StreamStats {
        samples: samples.len(),
        dead_letters: a.dead_total,
        ingest_errors: a.ingest_errors,
        max_ledger_len: a.max_ledger_len,
        froze: false,
    })
}

/// Harness 2: freeze/thaw mid-hostile-stream lands on the same digest
/// as serving straight through.
fn check_recovery(seed: u64, samples: &[Sample], i: u64) -> Result<StreamStats, String> {
    let straight = drive(seed, samples, None)?;
    let chunks = samples.chunks(BATCH).count().max(1);
    let pivot = (i as usize * 7 + 1) % chunks;
    let recovered = drive(seed, samples, Some(pivot))?;
    if recovered.digest != straight.digest {
        return Err(format!(
            "recovery digest unstable: thawed-at-chunk-{pivot} {:#018x} != straight {:#018x}",
            recovered.digest, straight.digest
        ));
    }
    if recovered.dead_total != straight.dead_total {
        return Err(format!(
            "recovery dead-letter total unstable: {} != {}",
            recovered.dead_total, straight.dead_total
        ));
    }
    Ok(StreamStats {
        samples: samples.len(),
        dead_letters: straight.dead_total,
        ingest_errors: straight.ingest_errors,
        max_ledger_len: straight.max_ledger_len,
        froze: true,
    })
}

/// Harness 3: a clean session sharing a [`Server`] with the hostile one
/// ends byte-identical to a solo clean run.
fn check_crosstalk(
    seed: u64,
    samples: &[Sample],
    clean: &[Sample],
    clean_digest: u64,
) -> Result<StreamStats, String> {
    let mut server = Server::new(2).map_err(|e| format!("fuzz: server build: {e}"))?;
    let hostile_id = server
        .admit(Box::new(move || serve::build_session(seed)))
        .map_err(|e| format!("fuzz: admit hostile: {e}"))?;
    let clean_seed = seed;
    let clean_id = server
        .admit(Box::new(move || serve::build_session(clean_seed)))
        .map_err(|e| format!("fuzz: admit clean: {e}"))?;
    let mut hostile_open = true;
    let mut hostile_chunks = samples.chunks(BATCH);
    let mut stats = StreamStats {
        samples: samples.len(),
        ..StreamStats::default()
    };
    for chunk in clean.chunks(BATCH) {
        // The server catches session panics; any absorbed panic is
        // still a fuzz failure — the target is zero panics, not zero
        // crashes.
        if hostile_open {
            match hostile_chunks.next() {
                Some(h) => match server.ingest(hostile_id, h) {
                    Ok(_) => {}
                    Err(ServeError::Faulted) | Err(ServeError::Quarantined) => {
                        hostile_open = false;
                    }
                    Err(_) => {
                        stats.ingest_errors += 1;
                        hostile_open = false;
                    }
                },
                None => hostile_open = false,
            }
        }
        server
            .ingest(clean_id, chunk)
            .map_err(|e| format!("clean slot disturbed by hostile sibling: {e}"))?;
    }
    let panics = server.stats(hostile_id).map(|s| s.panics).unwrap_or(0)
        + server.stats(clean_id).map(|s| s.panics).unwrap_or(0);
    if panics > 0 {
        return Err(format!("{panics} PANIC(s) absorbed by the server"));
    }
    server
        .finish(clean_id)
        .map_err(|e| format!("clean slot failed to finish: {e}"))?;
    let got = server
        .digest(clean_id)
        .map_err(|e| format!("clean slot digest unavailable: {e}"))?;
    if got != clean_digest {
        return Err(format!(
            "crosstalk: clean slot digest {got:#018x} != solo {clean_digest:#018x}"
        ));
    }
    if server.health(clean_id) != Ok(SessionHealth::Healthy) {
        return Err("crosstalk: clean slot lost Healthy status".to_string());
    }
    if let Ok(Some(d)) = server.dead_letters(hostile_id) {
        if d.len() > d.capacity() {
            return Err(format!(
                "hostile slot ledger exceeded its bound: {} > {}",
                d.len(),
                d.capacity()
            ));
        }
        stats.dead_letters = d.total();
        stats.max_ledger_len = d.len();
    }
    Ok(stats)
}

/// Runs one stream through the harness its index selects.
fn fuzz_one(
    seed: u64,
    base: &[Sample],
    alt: &[Sample],
    clean_digest: u64,
    i: u64,
) -> Result<StreamStats, String> {
    let (samples, applied) = hostile_stream(seed, base, alt, i);
    let tag = |e: String| {
        format!(
            "fuzz: stream {i} (seed {seed}, mutations {applied:?}, {} samples): {e}",
            samples.len()
        )
    };
    match i % 3 {
        0 => check_determinism(seed, &samples).map_err(tag),
        1 => check_recovery(seed, &samples, i).map_err(tag),
        _ => check_crosstalk(seed, &samples, base, clean_digest).map_err(tag),
    }
}

/// A fuzz run's failure: the report plus the failing stream's index
/// (when one specific stream, rather than the baseline, failed) so the
/// CLI can reconstruct its artifacts.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Human-readable divergence report.
    pub report: String,
    /// Index of the failing stream, if the failure was stream-specific.
    pub stream: Option<u64>,
}

impl From<String> for FuzzFailure {
    fn from(report: String) -> FuzzFailure {
        FuzzFailure {
            report,
            stream: None,
        }
    }
}

/// The CLI verb body: `streams` seeded hostile streams derived from
/// `scenario`'s golden schedule, fanned across `threads` workers.
/// `Ok` is an aggregate summary; `Err` is the first failing stream's
/// report (deterministic: the lowest failing index wins at any thread
/// count).
pub fn run_verb(
    seed: u64,
    streams: usize,
    threads: usize,
    scenario: &str,
) -> Result<String, FuzzFailure> {
    let base = serve::schedule_for(scenario, 1)?;
    // Crosstalk splices come from a different golden clock.
    let alt_name = if scenario == "goal" { "fig2" } else { "goal" };
    let alt = serve::schedule_for(alt_name, 1)?;
    let clean_digest = drive(seed, &base, None)
        .map_err(|e| format!("fuzz: clean baseline failed: {e}"))?
        .digest;
    let idxs: Vec<u64> = (0..streams as u64).collect();
    // Hostile streams have wildly uneven cost (one may freeze/thaw,
    // another dies early), so grain 1 keeps the chunked pool balanced.
    let cfg = simcore::par::PoolConfig::new(threads).grain(1);
    let (results, _) = simcore::par::map_stats(&cfg, &idxs, |_, &i| {
        fuzz_one(seed, &base, &alt, clean_digest, i)
    });
    let mut agg = StreamStats::default();
    let mut frozen = 0usize;
    let mut errored_streams = 0usize;
    for (i, r) in idxs.iter().zip(results) {
        let s = r.map_err(|report| FuzzFailure {
            report,
            stream: Some(*i),
        })?;
        agg.samples += s.samples;
        agg.dead_letters += s.dead_letters;
        agg.ingest_errors += s.ingest_errors;
        agg.max_ledger_len = agg.max_ledger_len.max(s.max_ledger_len);
        frozen += usize::from(s.froze);
        errored_streams += usize::from(s.ingest_errors > 0);
    }
    Ok(format!(
        "fuzz: {streams} hostile {scenario} streams, 0 panics, {} samples served\n\
         fuzz: {} dead letters (ledger high-water {} of 64), {} streams closed by surfaced errors\n\
         fuzz: {frozen} mid-stream freeze/thaw recoveries digest-stable, clean sibling digest {clean_digest:#018x} undisturbed\n",
        agg.samples, agg.dead_letters, agg.max_ledger_len, errored_streams
    ))
}

/// Reconstructs the artifacts of a failing stream for CI upload: the
/// mutated sample stream (debug-rendered, one sample per line) and the
/// frozen snapshot of whatever state survives serving it.
pub fn failure_artifacts(
    seed: u64,
    scenario: &str,
    i: u64,
) -> Result<(String, Option<Vec<u8>>), String> {
    let base = serve::schedule_for(scenario, 1)?;
    let alt_name = if scenario == "goal" { "fig2" } else { "goal" };
    let alt = serve::schedule_for(alt_name, 1)?;
    let (samples, applied) = hostile_stream(seed, &base, &alt, i);
    let mut text =
        format!("# fuzz stream {i} seed {seed} scenario {scenario} mutations {applied:?}\n");
    for s in &samples {
        text.push_str(&format!("{s:?}\n"));
    }
    let mut session = build(seed)?;
    for chunk in samples.chunks(BATCH) {
        match guarded_ingest(&mut session, chunk) {
            Ok(Ok(_)) => {}
            Ok(Err(_)) => break,
            Err(_) => break,
        }
    }
    Ok((text, session.freeze().ok()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracerec::GOLDEN_SEED;

    fn streams() -> (Vec<Sample>, Vec<Sample>) {
        let base = serve::schedule(1).expect("golden trace present");
        let alt = serve::schedule_for("goal", 1).expect("golden trace present");
        (base, alt)
    }

    /// Stream derivation is seeded (same index, same stream) and the
    /// operators actually mutate (different indices differ).
    #[test]
    fn hostile_streams_are_seeded_and_distinct() {
        let (base, alt) = streams();
        let (a1, ops1) = hostile_stream(GOLDEN_SEED, &base, &alt, 3);
        let (a2, _) = hostile_stream(GOLDEN_SEED, &base, &alt, 3);
        assert_eq!(a1, a2, "stream derivation is not seeded");
        assert!(!ops1.is_empty());
        let distinct = (0..8u64)
            .map(|i| hostile_stream(GOLDEN_SEED, &base, &alt, i).0)
            .any(|s| s != base);
        assert!(distinct, "no mutation changed the stream in 8 draws");
    }

    /// A small fuzz batch exercises all three harnesses without a
    /// panic, an unbounded ledger, or a digest instability.
    #[test]
    fn small_fuzz_batch_is_clean() {
        let out = run_verb(GOLDEN_SEED, 6, 2, serve::REPLAY_SCENARIO).expect("fuzz batch");
        assert!(out.contains("0 panics"), "{out}");
    }

    /// The fuzz verb's result is byte-identical at any thread count.
    #[test]
    fn fuzz_is_thread_count_invariant() {
        let a = run_verb(GOLDEN_SEED, 6, 1, serve::REPLAY_SCENARIO).expect("fuzz@1");
        let b = run_verb(GOLDEN_SEED, 6, 4, serve::REPLAY_SCENARIO).expect("fuzz@4");
        assert_eq!(a, b);
    }

    /// Failure artifacts reproduce: the stream text names the seed and
    /// the surviving state freezes.
    #[test]
    fn failure_artifacts_are_reconstructible() {
        let (text, snap) =
            failure_artifacts(GOLDEN_SEED, serve::REPLAY_SCENARIO, 1).expect("artifacts");
        assert!(text.contains("fuzz stream 1"), "{text}");
        assert!(snap.is_some(), "surviving state did not freeze");
    }
}
