//! Figure 19: example of goal-directed adaptation.
//!
//! The composite application (started every 25 s) runs concurrently with
//! the background video while Odyssey meets user-specified battery
//! durations of 20 and 26 minutes. The figure's top panel plots residual
//! energy supply against predicted demand; the four lower panels plot
//! each application's fidelity over time.
//!
//! Calibration note: the paper gave Odyssey 12,000 J. Our calibrated
//! platform draws ~38% more at the wall for the same workload (see
//! EXPERIMENTS.md), so the reproduction uses 16,600 J — chosen so the
//! full-fidelity workload lasts ~19.5 minutes and the lowest-fidelity
//! workload ~27 minutes, the same envelope the paper reports (19:27 and
//! 27:06).

use odyssey::GoalConfig;
use simcore::{SimDuration, SimRng, SimTime, TimeSeries};

use crate::goalrig::{run_composite_goal, GoalRun};
use crate::harness::Trials;
use crate::table::Table;

/// Initial energy value handed to Odyssey, J.
pub const INITIAL_ENERGY_J: f64 = 16_600.0;

/// The two example goals: 20 and 26 minutes.
pub const GOALS_S: [u64; 2] = [1200, 1560];

/// One goal's run with its traces.
#[derive(Clone, Debug)]
pub struct GoalTrace {
    /// Goal duration, seconds.
    pub goal_s: u64,
    /// The full run.
    pub run: GoalRun,
}

/// The figure: one trace per goal.
#[derive(Clone, Debug)]
pub struct Fig19 {
    /// Traces for the 20- and 26-minute goals.
    pub traces: Vec<GoalTrace>,
}

impl Fig19 {
    /// The trace for a goal.
    ///
    /// # Panics
    ///
    /// Panics if the goal was not run.
    pub fn trace(&self, goal_s: u64) -> &GoalTrace {
        self.traces
            .iter()
            .find(|t| t.goal_s == goal_s)
            // simlint: allow(D5) — documented # Panics accessor
            .expect("goal present")
    }
}

/// Runs both example goals.
pub fn run(trials: &Trials) -> Fig19 {
    run_goals(trials, &GOALS_S)
}

/// Runs an arbitrary set of goals (tests use shorter ones).
pub fn run_goals(trials: &Trials, goals: &[u64]) -> Fig19 {
    let root = SimRng::new(trials.seed);
    let traces = goals
        .iter()
        .map(|&goal_s| {
            let mut rng = root.fork(&format!("fig19/{goal_s}"));
            let cfg = GoalConfig::paper(INITIAL_ENERGY_J, SimDuration::from_secs(goal_s));
            GoalTrace {
                goal_s,
                run: run_composite_goal(cfg, &mut rng),
            }
        })
        .collect();
    Fig19 { traces }
}

fn series_row(name: &str, s: &TimeSeries, end: SimTime, cols: usize) -> Vec<String> {
    let step = SimDuration::from_micros((end.as_micros() / cols as u64).max(1));
    let mut row = vec![name.to_string()];
    for (_, v) in s.resample(step, end).into_iter().take(cols) {
        row.push(format!("{v:.0}"));
    }
    row
}

/// Renders both goals' supply/demand traces and fidelity summaries.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut out = String::new();
    for t in &f.traces {
        let end = t.run.report.end;
        let cols = 10;
        let mut header = vec!["Series".to_string()];
        for i in 0..cols {
            header.push(format!(
                "t={:.0}s",
                end.as_secs_f64() * i as f64 / cols as f64
            ));
        }
        let mut table = Table::new(
            format!(
                "Figure 19: goal {}s — met: {}, residual {:.0} J",
                t.goal_s, t.run.outcome.goal_met, t.run.report.residual_j
            ),
            &[],
        );
        table.header = header;
        table.push_row(series_row("Supply (J)", &t.run.supply, end, cols));
        table.push_row(series_row("Demand (J)", &t.run.demand, end, cols));
        for series in &t.run.report.fidelity {
            table.push_row(series_row(
                &format!("{} fidelity", series.name()),
                series,
                end,
                cols,
            ));
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig19 {
        run(&Trials::single())
    }

    /// Both goals are met with low residual energy.
    #[test]
    fn goals_are_met_with_low_residue() {
        let f = fig();
        for t in &f.traces {
            assert!(t.run.outcome.goal_met, "goal {}s missed", t.goal_s);
            assert!(!t.run.report.exhausted);
            let residue_frac = t.run.report.residual_j / INITIAL_ENERGY_J;
            assert!(
                residue_frac < 0.10,
                "goal {}s left {:.1}% residue",
                t.goal_s,
                residue_frac * 100.0
            );
            assert!(
                (t.run.report.duration_s() - t.goal_s as f64).abs() < 2.0,
                "goal {}s ended at {}",
                t.goal_s,
                t.run.report.duration_s()
            );
        }
    }

    /// "Estimated demand tracks supply closely for both experiments."
    #[test]
    fn demand_tracks_supply() {
        let f = fig();
        for t in &f.traces {
            let end = t.run.report.end;
            // Compare at 50% and 90% of the run.
            for frac in [0.5, 0.9] {
                let at = SimTime::from_secs_f64(end.as_secs_f64() * frac);
                let s = t.run.supply.value_at(at).unwrap();
                let d = t.run.demand.value_at(at).unwrap();
                let gap = (d - s).abs() / INITIAL_ENERGY_J;
                assert!(
                    gap < 0.15,
                    "goal {}s at {frac}: supply {s:.0} vs demand {d:.0}",
                    t.goal_s
                );
            }
        }
    }

    /// The 26-minute goal forces lower fidelity than the 20-minute goal.
    #[test]
    fn longer_goal_means_lower_fidelity() {
        let f = fig();
        let mean_level = |t: &GoalTrace, app: &str| {
            let series = t
                .run
                .report
                .fidelity
                .iter()
                .find(|s| s.name() == app)
                .unwrap();
            let end = t.run.report.end;
            let pts = series.resample(SimDuration::from_secs(10), end);
            pts.iter().map(|(_, v)| v).sum::<f64>() / pts.len() as f64
        };
        let short = f.trace(GOALS_S[0]);
        let long = f.trace(GOALS_S[1]);
        let avg_short: f64 = ["speech", "xanim", "anvil", "netscape"]
            .iter()
            .map(|a| mean_level(short, a))
            .sum();
        let avg_long: f64 = ["speech", "xanim", "anvil", "netscape"]
            .iter()
            .map(|a| mean_level(long, a))
            .sum();
        assert!(
            avg_long < avg_short,
            "26-min fidelity {avg_long} not below 20-min {avg_short}"
        );
    }

    /// Low-priority speech degrades at least as much as high-priority web
    /// (normalized to each ladder's depth).
    #[test]
    fn priorities_shape_degradation() {
        let f = fig();
        let long = f.trace(GOALS_S[1]);
        let mean_norm_level = |app: &str| {
            let series = long
                .run
                .report
                .fidelity
                .iter()
                .find(|s| s.name() == app)
                .unwrap();
            let end = long.run.report.end;
            let pts = series.resample(SimDuration::from_secs(10), end);
            let top = match app {
                "speech" => 1.0,
                "xanim" => 3.0,
                "anvil" => 3.0,
                "netscape" => 4.0,
                _ => unreachable!(),
            };
            pts.iter().map(|(_, v)| v / top).sum::<f64>() / pts.len() as f64
        };
        let speech = mean_norm_level("speech");
        let web = mean_norm_level("netscape");
        assert!(
            speech < web + 0.05,
            "lowest-priority speech ({speech:.2}) should sit below web ({web:.2})"
        );
    }
}
