//! simtrace golden-trace recorder and differ.
//!
//! Four canonical scenarios — the Figure 2 profiling run, one Figure 13
//! web-browsing cell, a hardened goal-directed run, and the supervised
//! k=2 misbehavior cell — are replayed with a category-filtered
//! [`TraceSink`] attached, and the JSONL event streams are pinned under
//! `tests/golden/`. [`check`] replays a scenario at [`GOLDEN_SEED`] and
//! reports the first diverging event against the checked-in file;
//! [`regenerate`] rewrites the goldens after an intentional behavior
//! change. The `tracediff` and `tracerec` CLI verbs wrap these.

use std::fs;
use std::path::PathBuf;

use machine::FaultConfig;
use odyssey::{GoalConfig, Hardening};
use odyssey_apps::datasets::WEB_IMAGES;
use odyssey_apps::WebFidelity;
use simcore::{SimDuration, SimRng, TraceCategory, TraceHandle, TraceSink};

use crate::{fig13, fig2, goalrig, supervise};

/// The recorded scenarios, in CLI order.
pub const SCENARIOS: [&str; 4] = ["fig2", "fig13", "goal", "supervise"];

/// The seed every golden trace is recorded at.
pub const GOLDEN_SEED: u64 = 42;

/// Goal-scenario scale: a hardened controller holding a 240 s goal on a
/// 3 kJ battery (the checkpoint-resume rig's scale, minutes not hours).
const GOAL_ENERGY_J: f64 = 3000.0;

/// Goal-scenario duration, seconds.
const GOAL_SECS: u64 = 240;

/// The per-scenario category filter. High-frequency categories (`Sched`,
/// `Energy`, `Meter`) stay out of every golden file — they are exercised
/// in-memory by the property tests instead.
fn categories(scenario: &str) -> Option<Vec<TraceCategory>> {
    use TraceCategory::{Budget, Control, Fault, Flow, Net, Supervisor};
    Some(match scenario {
        // Flow-rich interactive runs: flow lifecycle + the control plane.
        "fig2" | "fig13" => vec![Flow, Net, Fault, Control, Budget, Supervisor],
        // Budget included so every supply/demand decision — and therefore
        // any controller-constant change — lands in the golden file.
        "goal" => TraceCategory::CONTROL_PLANE.to_vec(),
        // The long supervised run drops Budget to keep the file small;
        // detector strikes and escalations are the interesting part.
        "supervise" => vec![Net, Fault, Control, Supervisor],
        _ => return None,
    })
}

/// Replays one scenario with a JSONL trace attached and returns the
/// recorded lines. Unknown scenarios are an error.
pub fn record(scenario: &str, seed: u64) -> Result<Vec<String>, String> {
    let cats = categories(scenario)
        .ok_or_else(|| format!("unknown trace scenario: {scenario} (have {SCENARIOS:?})"))?;
    let handle = TraceHandle::new(TraceSink::new().with_categories(&cats).with_jsonl());
    match scenario {
        "fig2" => {
            let (_scope, mut m) = fig2::build(seed);
            m.set_trace(handle.clone());
            let _ = m.run();
        }
        "fig13" => {
            // One canonical condition — JPEG-50, hardware power
            // management on, the figure's 5 s think time — browsing all
            // four images as one page sequence.
            let mut rng = SimRng::new(seed).fork("fig13/trace");
            let mut m = fig13::build(
                WEB_IMAGES.to_vec(),
                WebFidelity::Jpeg50,
                true,
                5.0,
                &mut rng,
            );
            m.set_trace(handle.clone());
            let _ = m.run();
        }
        "goal" => {
            let mut rng = SimRng::new(seed).fork("goal/trace");
            let cfg = GoalConfig::paper(GOAL_ENERGY_J, SimDuration::from_secs(GOAL_SECS))
                .with_hardening(Hardening::standard());
            let rig = goalrig::build_composite_goal(&cfg, false, FaultConfig::clean(), &mut rng);
            let mut m = rig.machine;
            m.set_trace(handle.clone());
            let _ = goalrig::finish(m, cfg, rig.priorities, rig.horizon);
        }
        "supervise" => {
            // The supervised k=2 cell: video hangs at 200 s, map lies.
            let mut rng = SimRng::new(seed).fork_indexed("supervise/2", 0);
            let mut rig = supervise::build_one(2, true, &mut rng);
            rig.machine.set_trace(handle.clone());
            let _ = rig.machine.run_until(rig.horizon);
        }
        other => return Err(format!("unknown trace scenario: {other}")),
    }
    Ok(handle.jsonl())
}

/// Directory holding the checked-in golden traces.
pub fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is resolved at compile time (no env read at
    // runtime); the goldens live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Path of the checked-in golden trace for a scenario.
pub fn golden_path(scenario: &str) -> PathBuf {
    golden_dir().join(format!("{scenario}.jsonl"))
}

/// Replays `scenario` at [`GOLDEN_SEED`] and compares it line-for-line
/// against the checked-in golden. `Ok` carries the number of matching
/// events; `Err` carries a first-divergence report plus the fresh lines
/// (so callers can save them as a CI artifact).
pub fn check(scenario: &str) -> Result<usize, (String, Vec<String>)> {
    let fresh = record(scenario, GOLDEN_SEED).map_err(|e| (e, Vec::new()))?;
    let path = golden_path(scenario);
    let golden = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            return Err((
                format!(
                    "tracediff: {scenario}: cannot read golden trace {}: {e}\n\
                     regenerate with: cargo run --release -p experiments -- tracerec",
                    path.display()
                ),
                fresh,
            ))
        }
    };
    let golden: Vec<&str> = golden.lines().collect();
    match divergence_report(scenario, &golden, &fresh) {
        None => Ok(golden.len()),
        Some(report) => Err((report, fresh)),
    }
}

/// First point where the fresh trace departs from the golden, rendered
/// with the preceding common events for context, or `None` on a match.
fn divergence_report(scenario: &str, golden: &[&str], fresh: &[String]) -> Option<String> {
    let common = golden.len().min(fresh.len());
    let at = (0..common).find(|&i| golden[i] != fresh[i]).or({
        if golden.len() != fresh.len() {
            Some(common)
        } else {
            None
        }
    })?;
    let mut out = format!(
        "tracediff: {scenario}: first divergence at event {} ({} golden / {} fresh events)\n",
        at + 1,
        golden.len(),
        fresh.len()
    );
    for line in golden.iter().take(at).skip(at.saturating_sub(3)) {
        out.push_str(&format!("    {line}\n"));
    }
    match golden.get(at) {
        Some(g) => out.push_str(&format!("  - golden: {g}\n")),
        None => out.push_str("  - golden: <end of trace>\n"),
    }
    match fresh.get(at) {
        Some(f) => out.push_str(&format!("  + fresh:  {f}\n")),
        None => out.push_str("  + fresh:  <end of trace>\n"),
    }
    Some(out)
}

/// Rewrites every golden trace at [`GOLDEN_SEED`]. Returns a summary of
/// what was written.
pub fn regenerate() -> Result<String, String> {
    let dir = golden_dir();
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut summary = String::new();
    for scenario in SCENARIOS {
        let lines = record(scenario, GOLDEN_SEED)?;
        let path = golden_path(scenario);
        let mut body = lines.join("\n");
        body.push('\n');
        fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        summary.push_str(&format!(
            "tracerec: wrote {} ({} events)\n",
            path.display(),
            lines.len()
        ));
    }
    Ok(summary)
}

/// Diffs every scenario against its golden, writing diverging fresh
/// traces to `target/tracediff/` for CI artifact upload. `Err` carries
/// the concatenated divergence reports.
pub fn check_all() -> Result<String, String> {
    let mut summary = String::new();
    let mut failures = String::new();
    for scenario in SCENARIOS {
        match check(scenario) {
            Ok(n) => summary.push_str(&format!("tracediff: {scenario}: OK ({n} events)\n")),
            Err((report, fresh)) => {
                failures.push_str(&report);
                if !fresh.is_empty() {
                    let dir =
                        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/tracediff");
                    if fs::create_dir_all(&dir).is_ok() {
                        let path = dir.join(format!("{scenario}.fresh.jsonl"));
                        let mut body = fresh.join("\n");
                        body.push('\n');
                        if fs::write(&path, body).is_ok() {
                            failures
                                .push_str(&format!("  fresh trace saved to {}\n", path.display()));
                        }
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(format!("{summary}{failures}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario records a non-empty stream, twice, byte-identically.
    #[test]
    fn fig13_recording_is_deterministic_and_nonempty() {
        let a = record("fig13", 7).unwrap();
        let b = record("fig13", 7).unwrap();
        assert!(!a.is_empty(), "fig13 trace empty");
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(record("fig99", 1).is_err());
    }

    #[test]
    fn divergence_report_points_at_first_differing_event() {
        let golden = vec!["a", "b", "c", "d"];
        let fresh = vec![
            "a".to_string(),
            "b".to_string(),
            "X".to_string(),
            "d".to_string(),
        ];
        let report = divergence_report("t", &golden, &fresh).unwrap();
        assert!(report.contains("first divergence at event 3"), "{report}");
        assert!(report.contains("- golden: c"), "{report}");
        assert!(report.contains("+ fresh:  X"), "{report}");
        // Context: the common prefix lines appear.
        assert!(report.contains("    a\n"), "{report}");
    }

    #[test]
    fn divergence_report_handles_truncated_fresh_trace() {
        let golden = vec!["a", "b"];
        let fresh = vec!["a".to_string()];
        let report = divergence_report("t", &golden, &fresh).unwrap();
        assert!(report.contains("+ fresh:  <end of trace>"), "{report}");
    }

    #[test]
    fn identical_traces_produce_no_report() {
        let golden = vec!["a", "b"];
        let fresh = vec!["a".to_string(), "b".to_string()];
        assert!(divergence_report("t", &golden, &fresh).is_none());
    }
}
