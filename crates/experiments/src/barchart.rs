//! Grouped-bar results, the shape of Figures 6, 8, 10, 13 and 15.
//!
//! Each figure is a set of data objects (clips, utterances, maps, images)
//! × a set of conditions (baseline, hardware-only, fidelity levels), with
//! per-bar energy statistics and the per-bucket shading the paper stacks
//! inside each bar.

use machine::RunReport;
use simcore::TrialStats;

use crate::table::{self, Table};

/// One bar: a (data object, condition) cell.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Data object (e.g. `"Video 1"`).
    pub object: String,
    /// Condition (e.g. `"Premiere-C"`).
    pub condition: String,
    /// Energy statistics over trials.
    pub stats: TrialStats,
    /// Mean energy per software bucket (the bar's shading), J.
    pub buckets: Vec<(String, f64)>,
    /// Mean display energy, J (used by the zoned-backlight projection).
    pub display_j: f64,
}

/// A full grouped-bar chart.
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// All bars, grouped by object in insertion order.
    pub bars: Vec<Bar>,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            bars: Vec::new(),
        }
    }

    /// Reduces trial reports into one bar.
    pub fn push(&mut self, object: &str, condition: &str, reports: &[RunReport]) {
        let stats = crate::harness::energy_stats(reports);
        // Union of bucket names, mean energy each.
        let mut names: Vec<String> = Vec::new();
        for r in reports {
            for (b, _) in &r.buckets {
                if !names.contains(b) {
                    names.push(b.clone());
                }
            }
        }
        let buckets = names
            .into_iter()
            .map(|b| {
                let mean = crate::harness::mean_bucket_j(reports, &b);
                (b, mean)
            })
            .collect();
        self.bars.push(Bar {
            object: object.to_string(),
            condition: condition.to_string(),
            stats,
            buckets,
            display_j: crate::harness::mean_display_j(reports),
        });
    }

    /// Mean energy of a bar, J.
    ///
    /// # Panics
    ///
    /// Panics if the bar is absent.
    pub fn energy_j(&self, object: &str, condition: &str) -> f64 {
        self.bar(object, condition).stats.mean
    }

    /// Looks up a bar.
    ///
    /// # Panics
    ///
    /// Panics if absent.
    pub fn bar(&self, object: &str, condition: &str) -> &Bar {
        self.bars
            .iter()
            .find(|b| b.object == object && b.condition == condition)
            .unwrap_or_else(|| panic!("no bar ({object}, {condition})"))
    }

    /// Percentage saving of `condition` relative to `reference` for one
    /// object.
    pub fn saving_pct(&self, object: &str, condition: &str, reference: &str) -> f64 {
        crate::harness::saving_pct(
            self.energy_j(object, reference),
            self.energy_j(object, condition),
        )
    }

    /// Min and max percentage saving across all objects.
    pub fn saving_band(&self, condition: &str, reference: &str) -> (f64, f64) {
        let objects: Vec<String> = self.objects();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for o in &objects {
            let s = self.saving_pct(o, condition, reference);
            min = min.min(s);
            max = max.max(s);
        }
        (min, max)
    }

    /// Distinct data objects, in insertion order.
    pub fn objects(&self) -> Vec<String> {
        let mut v = Vec::new();
        for b in &self.bars {
            if !v.contains(&b.object) {
                v.push(b.object.clone());
            }
        }
        v
    }

    /// Distinct conditions, in insertion order.
    pub fn conditions(&self) -> Vec<String> {
        let mut v = Vec::new();
        for b in &self.bars {
            if !v.contains(&b.condition) {
                v.push(b.condition.clone());
            }
        }
        v
    }

    /// Renders objects × conditions as mean ± CI90 cells, without savings
    /// rows (used where the conditions are not fidelity levels).
    pub fn to_table_plain(&self) -> Table {
        let conditions = self.conditions();
        let mut header = vec!["Object".to_string()];
        header.extend(conditions.iter().cloned());
        let mut t = Table::new(self.title.clone(), &[]);
        t.header = header;
        for o in self.objects() {
            let mut row = vec![o.clone()];
            for c in &conditions {
                let bar = self.bar(&o, c);
                row.push(table::pm(bar.stats.mean, bar.stats.ci90));
            }
            t.push_row(row);
        }
        t
    }

    /// Renders objects × conditions as mean ± CI90 cells, with a savings
    /// row against the first two conditions.
    pub fn to_table(&self) -> Table {
        let conditions = self.conditions();
        let mut t = self.to_table_plain();
        if conditions.len() >= 2 {
            let baseline = &conditions[0];
            let reference = &conditions[1];
            for (label, refc) in [
                ("saving vs baseline", baseline),
                ("saving vs hw-only", reference),
            ] {
                let mut row = vec![label.to_string()];
                for c in &conditions {
                    if c == baseline {
                        row.push(String::new());
                        continue;
                    }
                    let (lo, hi) = self.saving_band(c, refc);
                    row.push(format!("{lo:.0}-{hi:.0}%"));
                }
                t.push_row(row);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::workload::ScriptedWorkload;
    use machine::{Machine, MachineConfig};
    use simcore::SimDuration;

    fn reports(secs: u64) -> Vec<RunReport> {
        let mut m = Machine::new(MachineConfig::baseline());
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "w",
            SimDuration::from_secs(secs),
        )));
        vec![m.run()]
    }

    fn chart() -> BarChart {
        let mut c = BarChart::new("test");
        c.push("obj1", "Baseline", &reports(10));
        c.push("obj1", "HW-Only", &reports(8));
        c.push("obj2", "Baseline", &reports(20));
        c.push("obj2", "HW-Only", &reports(18));
        c
    }

    #[test]
    fn lookups() {
        let c = chart();
        assert!((c.energy_j("obj1", "Baseline") - 102.8).abs() < 0.1);
        assert_eq!(c.objects(), vec!["obj1", "obj2"]);
        assert_eq!(c.conditions(), vec!["Baseline", "HW-Only"]);
    }

    #[test]
    fn savings_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("HW-Only", "Baseline");
        assert!((lo - 10.0).abs() < 0.5, "lo {lo}");
        assert!((hi - 20.0).abs() < 0.5, "hi {hi}");
    }

    #[test]
    #[should_panic(expected = "no bar")]
    fn missing_bar_panics() {
        chart().energy_j("nope", "Baseline");
    }

    #[test]
    fn table_renders() {
        let s = chart().to_table().render();
        assert!(s.contains("obj1"));
        assert!(s.contains("saving vs baseline"));
    }

    #[test]
    fn buckets_are_averaged() {
        let c = chart();
        let bar = c.bar("obj1", "Baseline");
        let idle = bar.buckets.iter().find(|(n, _)| n == "Idle").unwrap().1;
        assert!((idle - 102.8).abs() < 0.1);
    }
}
