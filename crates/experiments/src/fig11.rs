//! Figure 11: effect of user think time for map viewing.
//!
//! The San Jose map is viewed with think times of 0, 5, 10 and 20 seconds
//! under three regimes — baseline, hardware-only power management, and
//! lowest fidelity — and a linear model `E_t = E_0 + t·P_B` is fitted to
//! each. The paper's reading: baseline and hardware-only diverge
//! (different slopes), hardware-only and lowest fidelity are parallel
//! (fidelity reduction is a constant offset, independent of think time).

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::MAPS;
use odyssey_apps::map::{MapFilter, MapViewer};
use odyssey_apps::MapFidelity;
use simcore::{LinearFit, SimDuration, SimRng, TrialStats};

use crate::harness::{energy_stats, run_trials, Trials};
use crate::table::{self, Table};

/// Think times swept, seconds.
pub const THINK_TIMES: [f64; 4] = [0.0, 5.0, 10.0, 20.0];

/// One regime's sweep: points and fitted line.
#[derive(Clone, Debug)]
pub struct ThinkSweep {
    /// Regime name.
    pub case: &'static str,
    /// (think time s, energy stats) per sweep point.
    pub points: Vec<(f64, TrialStats)>,
    /// Least-squares fit of mean energy vs think time.
    pub fit: LinearFit,
}

/// The full figure: three regimes.
#[derive(Clone, Debug)]
pub struct Fig11 {
    /// Baseline, hardware-only, lowest fidelity.
    pub sweeps: Vec<ThinkSweep>,
}

fn lowest() -> MapFidelity {
    MapFidelity {
        filter: MapFilter::Secondary,
        cropped: true,
    }
}

fn build(fidelity: MapFidelity, pm: bool, think_s: f64, rng: &mut SimRng) -> Machine {
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(
        MapViewer::fixed(vec![MAPS[0]], fidelity, rng)
            .with_think_time(SimDuration::from_secs_f64(think_s)),
    ));
    m
}

/// Runs the sweep.
pub fn run(trials: &Trials) -> Fig11 {
    let cases: [(&'static str, MapFidelity, bool); 3] = [
        ("Baseline", MapFidelity::full(), false),
        ("Hardware-Only Power Mgmt.", MapFidelity::full(), true),
        ("Lowest Fidelity", lowest(), true),
    ];
    // The paper uses ten trials for this application.
    let trials = &Trials {
        n: trials.n * 2,
        ..*trials
    };
    let sweeps = cases
        .into_iter()
        .map(|(case, fidelity, pm)| {
            let points: Vec<(f64, TrialStats)> = THINK_TIMES
                .iter()
                .map(|&t| {
                    let label = format!("fig11/{case}/{t}");
                    let reports = run_trials(trials, &label, |rng| build(fidelity, pm, t, rng));
                    (t, energy_stats(&reports))
                })
                .collect();
            let fit_points: Vec<(f64, f64)> = points.iter().map(|(t, s)| (*t, s.mean)).collect();
            ThinkSweep {
                case,
                points,
                fit: LinearFit::fit(&fit_points),
            }
        })
        .collect();
    Fig11 { sweeps }
}

/// Renders the figure as a table with the fitted models.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut header = vec!["Case".to_string()];
    for t in THINK_TIMES {
        header.push(format!("t={t}s"));
    }
    header.push("E0 (J)".into());
    header.push("P_B (W)".into());
    header.push("r²".into());
    let mut table = Table::new(
        "Figure 11: Effect of user think time for map viewing (San Jose, J)",
        &[],
    );
    table.header = header;
    for s in &f.sweeps {
        let mut row = vec![s.case.to_string()];
        for (_, stats) in &s.points {
            row.push(table::pm(stats.mean, stats.ci90));
        }
        row.push(format!("{:.1}", s.fit.intercept));
        row.push(format!("{:.2}", s.fit.slope));
        row.push(format!("{:.4}", s.fit.r_squared));
        table.push_row(row);
    }
    table
        .with_caption(
            "Linear model E_t = E0 + t*P_B; paper: baseline diverges from hardware-only, \
             hardware-only and lowest fidelity are parallel.",
        )
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig11 {
        run(&Trials::quick())
    }

    /// The linear model fits every regime well.
    #[test]
    fn linear_model_fits() {
        for s in fig().sweeps {
            assert!(
                s.fit.r_squared > 0.975,
                "{}: r² = {}",
                s.case,
                s.fit.r_squared
            );
        }
    }

    /// Baseline slope is the full-on power; hardware-only slope is lower
    /// (the divergent lines of the figure).
    #[test]
    fn baseline_diverges_from_hw_only() {
        let f = fig();
        let slope = |case: &str| {
            f.sweeps
                .iter()
                .find(|s| s.case == case)
                .map(|s| s.fit.slope)
                .unwrap()
        };
        let base = slope("Baseline");
        let hw = slope("Hardware-Only Power Mgmt.");
        assert!((base - 10.28).abs() < 0.4, "baseline slope {base}");
        assert!(hw < base - 1.0, "hw slope {hw} not below baseline {base}");
    }

    /// Hardware-only and lowest fidelity are parallel: fidelity reduction
    /// is a constant benefit, independent of think time.
    #[test]
    fn hw_only_parallel_to_lowest() {
        let f = fig();
        let hw = f
            .sweeps
            .iter()
            .find(|s| s.case == "Hardware-Only Power Mgmt.")
            .unwrap();
        let low = f
            .sweeps
            .iter()
            .find(|s| s.case == "Lowest Fidelity")
            .unwrap();
        let rel = (hw.fit.slope - low.fit.slope).abs() / hw.fit.slope;
        assert!(rel < 0.08, "slopes differ by {:.1}%", rel * 100.0);
        assert!(low.fit.intercept < hw.fit.intercept);
    }
}
