//! The `serve` verb: always-on session replay and kill/resume proof.
//!
//! Drives a [`simserve::Session`] over the supervised k=2 golden scenario
//! (the longest golden trace) with a sample schedule derived from the
//! recorded `tests/golden/supervise.jsonl` timestamps, optionally
//! subdivided by a replay multiple — at 100× the session steps ~70 000
//! times, the soak CI runs. The verb then kills the session at a mid-run
//! checkpoint, resumes by replaying the identical stream, and fails on
//! any divergence: journal digest at the salvage point, final state
//! digest, or a single trace byte.
//!
//! [`torture_sweep`] extends the single mid-run kill to *every*
//! checkpoint boundary, fanned out over the deterministic work pool —
//! the acceptance gate `tests/checkpoint_resume.rs` pins at 1 and 4
//! threads.

use std::fs;

use simcore::{Checkpoint, SimDuration, SimRng, TraceCategory, TraceHandle, TraceSink};
use simserve::{Sample, ServeError, Session, SessionConfig};

use crate::supervise;
use crate::tracerec;

/// The golden scenario the serve session replays (the longest trace).
pub const REPLAY_SCENARIO: &str = "supervise";

/// Checkpoint cadence of the serve session, sim-seconds. 180 s over the
/// ~1560 s goal run yields eight torture boundaries.
pub const CKPT_EVERY_S: u64 = 180;

/// Everything one serve run leaves behind. For a killed run only the
/// journal (`checkpoints`) survives by contract; the rest is what the
/// uninterrupted twin is compared over.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// Samples fed before the run ended (or was killed).
    pub samples_fed: usize,
    /// Directives the session issued.
    pub directives: usize,
    /// Journal checkpoints recorded.
    pub checkpoints: Vec<Checkpoint>,
    /// Dead letters recorded.
    pub dead_letters: u64,
    /// Final state digest (meaningless for a killed run).
    pub final_digest: u64,
    /// Serving trace, JSONL.
    pub trace: Vec<String>,
}

/// Builds the serving session for the supervised k=2 golden rig at
/// `seed` — identical construction on every call, which is what makes
/// resume-by-replay sound.
pub fn build_session(seed: u64) -> Result<Session, ServeError> {
    let mut rng = SimRng::new(seed).fork_indexed("supervise/2", 0);
    let rig = supervise::build_one(2, true, &mut rng);
    // The supervise golden categories plus the service layer's own
    // events (reconfig verdicts, dead letters).
    let trace = TraceHandle::new(
        TraceSink::new()
            .with_categories(&[
                TraceCategory::Net,
                TraceCategory::Fault,
                TraceCategory::Control,
                TraceCategory::Supervisor,
                TraceCategory::Service,
            ])
            .with_jsonl(),
    );
    let cfg = SessionConfig {
        checkpoint_every: SimDuration::from_secs(CKPT_EVERY_S),
        ..SessionConfig::standard(rig.horizon)
    };
    Session::serve(rig.machine, Some(rig.goal), rig.supervisor, trace, cfg)
}

/// Sim time of a golden JSONL line (every line starts `{"time_s":…,`).
fn time_of(line: &str) -> Result<f64, String> {
    let rest = line
        .strip_prefix("{\"time_s\":")
        .ok_or_else(|| format!("golden line without time_s prefix: {line}"))?;
    let end = rest
        .find(',')
        .ok_or_else(|| format!("golden line without field separator: {line}"))?;
    rest[..end]
        .parse()
        .map_err(|e| format!("unparsable time_s in golden line ({e}): {line}"))
}

/// Derives the session's sample schedule from the recorded golden
/// trace: one tick per golden event time, each inter-event gap
/// subdivided `multiple`-fold. The stream is a pure function of the
/// checked-in file, so every replay feeds identical input.
pub fn schedule(multiple: u32) -> Result<Vec<Sample>, String> {
    let multiple = multiple.max(1);
    let path = tracerec::golden_path(REPLAY_SCENARIO);
    let body = fs::read_to_string(&path).map_err(|e| {
        format!(
            "serve: cannot read golden trace {}: {e}\n\
             regenerate with: cargo run --release -p experiments -- tracerec",
            path.display()
        )
    })?;
    let mut out = Vec::new();
    let mut prev = 0.0f64;
    for line in body.lines() {
        let t = time_of(line)?;
        if t > prev {
            for k in 1..=multiple {
                let frac = k as f64 / multiple as f64;
                out.push(Sample::tick(prev + (t - prev) * frac));
            }
        } else {
            out.push(Sample::tick(t));
        }
        prev = t.max(prev);
    }
    Ok(out)
}

/// Replays `samples` through a fresh session at `seed`. With
/// `kill_after_ckpt = Some(k)` the run is killed (dropped mid-stream)
/// as soon as checkpoint `k` has been recorded — modelling a crash
/// whose journal is the only survivor.
pub fn replay(
    seed: u64,
    samples: &[Sample],
    kill_after_ckpt: Option<usize>,
) -> Result<ServeRun, String> {
    let mut session = build_session(seed).map_err(|e| format!("serve: {e}"))?;
    let mut directives = 0usize;
    let mut fed = 0usize;
    let mut killed = false;
    for chunk in samples.chunks(64) {
        directives += session
            .ingest(chunk)
            .map_err(|e| format!("serve: ingest failed at sample {fed}: {e}"))?
            .len();
        fed += chunk.len();
        if let Some(k) = kill_after_ckpt {
            if session.checkpoints().len() > k {
                killed = true;
                break;
            }
        }
    }
    if !killed {
        session
            .finish()
            .map_err(|e| format!("serve: finish: {e}"))?;
    }
    Ok(ServeRun {
        samples_fed: fed,
        directives,
        checkpoints: session.checkpoints(),
        dead_letters: session.dead_letters().map(|d| d.total()).unwrap_or(0),
        final_digest: session.digest(),
        trace: session.trace_jsonl(),
    })
}

/// Verifies one crash boundary: kill after checkpoint `k`, salvage the
/// journal, resume by replaying the identical stream, and demand the
/// resumed run passes through the salvage point and ends byte-identical
/// to `base`. Returns a one-line proof summary.
fn verify_boundary(
    seed: u64,
    samples: &[Sample],
    base: &ServeRun,
    k: usize,
) -> Result<String, String> {
    let crashed = replay(seed, samples, Some(k))?;
    let salvage = *crashed
        .checkpoints
        .last()
        .ok_or_else(|| format!("boundary {k}: crashed run journaled nothing"))?;
    if crashed.trace.len() > base.trace.len()
        || crashed.trace[..] != base.trace[..crashed.trace.len()]
    {
        return Err(format!(
            "boundary {k}: crashed run's trace is not a prefix of the uninterrupted run's"
        ));
    }
    let resumed = replay(seed, samples, None)?;
    if !resumed
        .checkpoints
        .iter()
        .any(|c| c.t == salvage.t && c.digest == salvage.digest)
    {
        return Err(format!(
            "boundary {k}: resumed run diverged from salvaged checkpoint {salvage:?}"
        ));
    }
    if resumed.final_digest != base.final_digest {
        return Err(format!(
            "boundary {k}: final digest {:#018x} != uninterrupted {:#018x}",
            resumed.final_digest, base.final_digest
        ));
    }
    if resumed.trace != base.trace {
        let at = resumed
            .trace
            .iter()
            .zip(base.trace.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(resumed.trace.len().min(base.trace.len()));
        return Err(format!(
            "boundary {k}: resumed trace diverges from uninterrupted at event {at}"
        ));
    }
    Ok(format!(
        "boundary {k}: salvage t={:.0}s digest={:#018x} resume OK ({} events)",
        salvage.t.as_secs_f64(),
        salvage.digest,
        base.trace.len()
    ))
}

/// The torture sweep: crash at *every* checkpoint boundary and prove
/// each resume bit-identical, fanned out over `threads` workers.
/// Returns one proof line per boundary (identical at any thread count)
/// or the first divergence report.
pub fn torture_sweep(seed: u64, multiple: u32, threads: usize) -> Result<Vec<String>, String> {
    let samples = schedule(multiple)?;
    let base = replay(seed, &samples, None)?;
    if base.checkpoints.len() < 2 {
        return Err(format!(
            "serve: expected several checkpoints, got {}",
            base.checkpoints.len()
        ));
    }
    let boundaries: Vec<usize> = (0..base.checkpoints.len()).collect();
    let results = simcore::par::map(threads, &boundaries, |_, &k| {
        verify_boundary(seed, &samples, &base, k)
    });
    let mut lines = Vec::with_capacity(results.len());
    for r in results {
        lines.push(r?);
    }
    Ok(lines)
}

/// The CLI verb body: replay at `multiple`, kill at the mid-run
/// checkpoint, resume, and report. `Err` is a divergence report (the CI
/// soak uploads it as an artifact).
pub fn run_verb(seed: u64, multiple: u32) -> Result<String, String> {
    let samples = schedule(multiple)?;
    let base = replay(seed, &samples, None)?;
    if base.checkpoints.len() < 2 {
        return Err(format!(
            "serve: expected several checkpoints, got {}",
            base.checkpoints.len()
        ));
    }
    let mid = base.checkpoints.len() / 2;
    let proof = verify_boundary(seed, &samples, &base, mid)?;
    let mut out = String::new();
    out.push_str(&format!(
        "serve: replayed {} at {multiple}x: {} samples, {} directives, {} checkpoints, {} dead letters\n",
        REPLAY_SCENARIO,
        base.samples_fed,
        base.directives,
        base.checkpoints.len(),
        base.dead_letters
    ));
    out.push_str(&format!(
        "serve: final digest {:#018x} over {} trace events\n",
        base.final_digest,
        base.trace.len()
    ));
    out.push_str(&format!("serve: kill/resume {proof}\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracerec::GOLDEN_SEED;

    /// The schedule is a pure function of the checked-in golden file,
    /// and the multiple subdivides without reordering.
    #[test]
    fn schedule_is_monotone_and_scales_with_multiple() {
        let s1 = schedule(1).expect("golden trace present");
        let s4 = schedule(4).expect("golden trace present");
        assert!(!s1.is_empty());
        assert!(s4.len() > 3 * s1.len(), "{} vs {}", s4.len(), s1.len());
        for w in s1.windows(2) {
            assert!(w[1].at_s >= w[0].at_s, "schedule not monotone: {w:?}");
        }
        for w in s4.windows(2) {
            assert!(w[1].at_s >= w[0].at_s, "4x schedule not monotone: {w:?}");
        }
    }

    /// A serve replay is deterministic: same seed, same stream, same
    /// digest and byte-identical trace.
    #[test]
    fn replay_is_deterministic() {
        let samples = schedule(1).expect("golden trace present");
        let a = replay(GOLDEN_SEED, &samples, None).expect("replay");
        let b = replay(GOLDEN_SEED, &samples, None).expect("replay");
        assert!(a.checkpoints.len() >= 2, "{:?}", a.checkpoints);
        assert_eq!(a.final_digest, b.final_digest);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.directives, b.directives);
        assert_eq!(a.dead_letters, 0, "clean stream dead-lettered");
    }

    /// The verb's single mid-run kill/resume proof passes end to end.
    #[test]
    fn verb_kill_resume_proof_passes() {
        let out = run_verb(GOLDEN_SEED, 1).expect("kill/resume proof");
        assert!(out.contains("resume OK"), "{out}");
    }
}
