//! The `serve` verb: always-on session replay and kill/resume proof.
//!
//! Drives a [`simserve::Session`] over the supervised k=2 golden scenario
//! (the longest golden trace) with a sample schedule derived from the
//! recorded `tests/golden/supervise.jsonl` timestamps, optionally
//! subdivided by a replay multiple — at 100× the session steps ~70 000
//! times, the soak CI runs. The verb then kills the session at a mid-run
//! checkpoint, resumes by replaying the identical stream, and fails on
//! any divergence: journal digest at the salvage point, final state
//! digest, or a single trace byte.
//!
//! [`torture_sweep`] extends the single mid-run kill to *every*
//! checkpoint boundary, fanned out over the deterministic work pool —
//! the acceptance gate `tests/checkpoint_resume.rs` pins at 1 and 4
//! threads.

use std::fs;

use simcore::{Checkpoint, SimDuration, SimRng, TraceCategory, TraceHandle, TraceSink};
use simserve::{run_fleet, FleetSpec, Sample, ServeError, Session, SessionConfig, SessionHealth};

use crate::supervise;
use crate::tracerec;

/// The golden scenario the serve session replays (the longest trace).
pub const REPLAY_SCENARIO: &str = "supervise";

/// Checkpoint cadence of the serve session, sim-seconds. 180 s over the
/// ~1560 s goal run yields eight torture boundaries.
pub const CKPT_EVERY_S: u64 = 180;

/// Everything one serve run leaves behind. For a killed run only the
/// journal (`checkpoints`) survives by contract; the rest is what the
/// uninterrupted twin is compared over.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// Samples fed before the run ended (or was killed).
    pub samples_fed: usize,
    /// Directives the session issued.
    pub directives: usize,
    /// Journal checkpoints recorded.
    pub checkpoints: Vec<Checkpoint>,
    /// Dead letters recorded.
    pub dead_letters: u64,
    /// Final state digest (meaningless for a killed run).
    pub final_digest: u64,
    /// Serving trace, JSONL.
    pub trace: Vec<String>,
}

/// Builds the serving session for the supervised k=2 golden rig at
/// `seed` — identical construction on every call, which is what makes
/// resume-by-replay sound.
pub fn build_session(seed: u64) -> Result<Session, ServeError> {
    let mut rng = SimRng::new(seed).fork_indexed("supervise/2", 0);
    let rig = supervise::build_one(2, true, &mut rng);
    // The supervise golden categories plus the service layer's own
    // events (reconfig verdicts, dead letters).
    let trace = TraceHandle::new(
        TraceSink::new()
            .with_categories(&[
                TraceCategory::Net,
                TraceCategory::Fault,
                TraceCategory::Control,
                TraceCategory::Supervisor,
                TraceCategory::Service,
            ])
            .with_jsonl(),
    );
    let cfg = SessionConfig {
        checkpoint_every: SimDuration::from_secs(CKPT_EVERY_S),
        ..SessionConfig::standard(rig.horizon)
    };
    Session::serve(rig.machine, Some(rig.goal), rig.supervisor, trace, cfg)
}

/// Sim time of a golden JSONL line (every line starts `{"time_s":…,`).
fn time_of(line: &str) -> Result<f64, String> {
    let rest = line
        .strip_prefix("{\"time_s\":")
        .ok_or_else(|| format!("golden line without time_s prefix: {line}"))?;
    let end = rest
        .find(',')
        .ok_or_else(|| format!("golden line without field separator: {line}"))?;
    rest[..end]
        .parse()
        .map_err(|e| format!("unparsable time_s in golden line ({e}): {line}"))
}

/// Derives the session's sample schedule from the recorded golden
/// trace: one tick per golden event time, each inter-event gap
/// subdivided `multiple`-fold. The stream is a pure function of the
/// checked-in file, so every replay feeds identical input.
pub fn schedule(multiple: u32) -> Result<Vec<Sample>, String> {
    schedule_for(REPLAY_SCENARIO, multiple)
}

/// [`schedule`] generalized over the recorded golden scenarios: any of
/// [`tracerec::SCENARIOS`] can drive the session (`--scenario` on the
/// CLI). The session rig itself stays the supervised k=2 build; only the
/// tick stream changes, so short streams simply serve a shorter run.
pub fn schedule_for(scenario: &str, multiple: u32) -> Result<Vec<Sample>, String> {
    if !tracerec::SCENARIOS.contains(&scenario) {
        return Err(format!(
            "serve: unknown scenario {scenario} (have {:?})",
            tracerec::SCENARIOS
        ));
    }
    let multiple = multiple.max(1);
    let path = tracerec::golden_path(scenario);
    let body = fs::read_to_string(&path).map_err(|e| {
        format!(
            "serve: cannot read golden trace {}: {e}\n\
             regenerate with: cargo run --release -p experiments -- tracerec",
            path.display()
        )
    })?;
    let mut out = Vec::new();
    let mut prev = 0.0f64;
    for line in body.lines() {
        let t = time_of(line)?;
        if t > prev {
            for k in 1..=multiple {
                let frac = k as f64 / multiple as f64;
                out.push(Sample::tick(prev + (t - prev) * frac));
            }
        } else {
            out.push(Sample::tick(t));
        }
        prev = t.max(prev);
    }
    Ok(out)
}

/// Replays `samples` through a fresh session at `seed`. With
/// `kill_after_ckpt = Some(k)` the run is killed (dropped mid-stream)
/// as soon as checkpoint `k` has been recorded — modelling a crash
/// whose journal is the only survivor.
pub fn replay(
    seed: u64,
    samples: &[Sample],
    kill_after_ckpt: Option<usize>,
) -> Result<ServeRun, String> {
    let mut session = build_session(seed).map_err(|e| format!("serve: {e}"))?;
    let mut directives = 0usize;
    let mut fed = 0usize;
    let mut killed = false;
    for chunk in samples.chunks(64) {
        directives += session
            .ingest(chunk)
            .map_err(|e| format!("serve: ingest failed at sample {fed}: {e}"))?
            .len();
        fed += chunk.len();
        if let Some(k) = kill_after_ckpt {
            if session.checkpoints().len() > k {
                killed = true;
                break;
            }
        }
    }
    if !killed {
        session
            .finish()
            .map_err(|e| format!("serve: finish: {e}"))?;
    }
    Ok(ServeRun {
        samples_fed: fed,
        directives,
        checkpoints: session.checkpoints(),
        dead_letters: session.dead_letters().map(|d| d.total()).unwrap_or(0),
        final_digest: session.digest(),
        trace: session.trace_jsonl(),
    })
}

/// What a kill boundary leaves behind on the snapshot path: the frozen
/// state, how much of the stream it covers, and the trace emitted up to
/// the freeze (the part a thawed twin can never re-emit).
#[derive(Clone, Debug)]
pub struct FrozenRun {
    /// `Session::freeze` bytes taken at the kill point.
    pub snapshot: Vec<u8>,
    /// Samples fed before the freeze; resume continues at this index.
    pub samples_fed: usize,
    /// Trace emitted before the freeze (prefix of the uninterrupted
    /// run's trace; snapshots exclude trace history by design).
    pub trace_prefix: Vec<String>,
}

/// Replays until checkpoint `k` is recorded — exactly [`replay`]'s kill
/// point — then freezes the session instead of dropping it. Boundaries
/// that only fall during the post-stream run-out (checkpoints recorded
/// by `finish`) freeze at end-of-stream instead: killed after the last
/// sample, before the run-out.
pub fn freeze_at_boundary(seed: u64, samples: &[Sample], k: usize) -> Result<FrozenRun, String> {
    let mut session = build_session(seed).map_err(|e| format!("serve: {e}"))?;
    let mut fed = 0usize;
    for chunk in samples.chunks(64) {
        session
            .ingest(chunk)
            .map_err(|e| format!("serve: ingest failed at sample {fed}: {e}"))?;
        fed += chunk.len();
        if session.checkpoints().len() > k {
            break;
        }
    }
    Ok(FrozenRun {
        snapshot: session
            .freeze()
            .map_err(|e| format!("boundary {k}: freeze failed: {e}"))?,
        samples_fed: fed,
        trace_prefix: session.trace_jsonl(),
    })
}

/// Resumes from a snapshot in O(state): builds the session shell fresh,
/// thaws the frozen bytes into it, and feeds only the remainder of the
/// stream. No history is replayed — that is the point.
pub fn snapshot_resume(
    seed: u64,
    samples: &[Sample],
    frozen: &FrozenRun,
) -> Result<ServeRun, String> {
    let mut session = build_session(seed).map_err(|e| format!("serve: {e}"))?;
    session
        .thaw(&frozen.snapshot)
        .map_err(|e| format!("serve: thaw failed: {e}"))?;
    let rest = samples.get(frozen.samples_fed..).unwrap_or(&[]);
    let mut directives = 0usize;
    let mut fed = frozen.samples_fed;
    for chunk in rest.chunks(64) {
        directives += session
            .ingest(chunk)
            .map_err(|e| format!("serve: post-thaw ingest failed at sample {fed}: {e}"))?
            .len();
        fed += chunk.len();
    }
    session
        .finish()
        .map_err(|e| format!("serve: post-thaw finish: {e}"))?;
    Ok(ServeRun {
        samples_fed: fed,
        directives,
        checkpoints: session.checkpoints(),
        dead_letters: session.dead_letters().map(|d| d.total()).unwrap_or(0),
        final_digest: session.digest(),
        // Post-thaw emissions only: snapshots exclude trace history, so
        // callers compare this as a suffix of the uninterrupted trace.
        trace: session.trace_jsonl(),
    })
}

/// Verifies one crash boundary: kill after checkpoint `k`, salvage the
/// journal, resume by replaying the identical stream, and demand the
/// resumed run passes through the salvage point and ends byte-identical
/// to `base`. Then proves the O(state) path: a snapshot frozen at the
/// same boundary thaws into a fresh shell, consumes only the remaining
/// stream, and lands on the same digests and trace. Returns a one-line
/// proof summary.
fn verify_boundary(
    seed: u64,
    samples: &[Sample],
    base: &ServeRun,
    k: usize,
) -> Result<String, String> {
    let crashed = replay(seed, samples, Some(k))?;
    let salvage = *crashed
        .checkpoints
        .last()
        .ok_or_else(|| format!("boundary {k}: crashed run journaled nothing"))?;
    if crashed.trace.len() > base.trace.len()
        || crashed.trace[..] != base.trace[..crashed.trace.len()]
    {
        return Err(format!(
            "boundary {k}: crashed run's trace is not a prefix of the uninterrupted run's"
        ));
    }
    let resumed = replay(seed, samples, None)?;
    if !resumed
        .checkpoints
        .iter()
        .any(|c| c.t == salvage.t && c.digest == salvage.digest)
    {
        return Err(format!(
            "boundary {k}: resumed run diverged from salvaged checkpoint {salvage:?}"
        ));
    }
    if resumed.final_digest != base.final_digest {
        return Err(format!(
            "boundary {k}: final digest {:#018x} != uninterrupted {:#018x}",
            resumed.final_digest, base.final_digest
        ));
    }
    if resumed.trace != base.trace {
        let at = resumed
            .trace
            .iter()
            .zip(base.trace.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(resumed.trace.len().min(base.trace.len()));
        return Err(format!(
            "boundary {k}: resumed trace diverges from uninterrupted at event {at}"
        ));
    }
    // The O(state) path must land exactly where the O(history) path did.
    let frozen = freeze_at_boundary(seed, samples, k)?;
    let thawed = snapshot_resume(seed, samples, &frozen)?;
    if thawed.final_digest != base.final_digest {
        return Err(format!(
            "boundary {k}: snapshot-resumed digest {:#018x} != uninterrupted {:#018x}",
            thawed.final_digest, base.final_digest
        ));
    }
    if thawed.checkpoints != base.checkpoints {
        return Err(format!(
            "boundary {k}: snapshot-resumed journal diverges ({} vs {} checkpoints)",
            thawed.checkpoints.len(),
            base.checkpoints.len()
        ));
    }
    let stitched: Vec<&String> = frozen.trace_prefix.iter().chain(&thawed.trace).collect();
    if stitched.len() != base.trace.len() || stitched.iter().zip(&base.trace).any(|(a, b)| *a != b)
    {
        return Err(format!(
            "boundary {k}: snapshot prefix+suffix trace ({} events) != uninterrupted ({})",
            stitched.len(),
            base.trace.len()
        ));
    }
    Ok(format!(
        "boundary {k}: salvage t={:.0}s digest={:#018x} replay+snapshot resume OK \
         ({} events, snapshot {} bytes covering {} samples)",
        salvage.t.as_secs_f64(),
        salvage.digest,
        base.trace.len(),
        frozen.snapshot.len(),
        frozen.samples_fed
    ))
}

/// The torture sweep: crash at *every* checkpoint boundary and prove
/// each resume bit-identical, fanned out over `threads` workers.
/// Returns one proof line per boundary (identical at any thread count)
/// or the first divergence report.
///
/// Boundary cost rises with the boundary index (a later crash replays a
/// longer prefix), so the pool is pinned to grain 1: the guided chunks
/// never lump the expensive tail boundaries onto one worker.
pub fn torture_sweep(seed: u64, multiple: u32, threads: usize) -> Result<Vec<String>, String> {
    let samples = schedule(multiple)?;
    let base = replay(seed, &samples, None)?;
    if base.checkpoints.len() < 2 {
        return Err(format!(
            "serve: expected several checkpoints, got {}",
            base.checkpoints.len()
        ));
    }
    let boundaries: Vec<usize> = (0..base.checkpoints.len()).collect();
    let cfg = simcore::par::PoolConfig::new(threads).grain(1);
    let (results, _) = simcore::par::map_stats(&cfg, &boundaries, |_, &k| {
        verify_boundary(seed, &samples, &base, k)
    });
    let mut lines = Vec::with_capacity(results.len());
    for r in results {
        lines.push(r?);
    }
    Ok(lines)
}

/// Runs `sessions` independent session lifecycles over the same stream
/// (per-slot seeds `seed..seed+sessions`), fanned across `threads`
/// workers with index-ordered merge. Returns one summary line per slot
/// or the first unhealthy outcome as an error.
pub fn run_sessions(
    seed: u64,
    samples: &[Sample],
    sessions: usize,
    threads: usize,
) -> Result<Vec<String>, String> {
    let specs: Vec<FleetSpec<_>> = (0..sessions)
        .map(|i| FleetSpec {
            builder: move || build_session(seed + i as u64),
            samples: samples.to_vec(),
            batch: 64,
        })
        .collect();
    let outcomes = run_fleet(threads, &specs);
    let mut lines = Vec::with_capacity(outcomes.len());
    for (i, o) in outcomes.iter().enumerate() {
        if let SessionHealth::Dead { reason } = o.health {
            return Err(format!(
                "serve: session {i} (seed {}) died: {reason}",
                seed + i as u64
            ));
        }
        lines.push(format!(
            "session {i}: seed {} digest {:#018x} {} directives, {} checkpoints, \
             {} dead letters, {} faults contained",
            seed + i as u64,
            o.final_digest,
            o.directives,
            o.checkpoints,
            o.dead_letters,
            o.faults
        ));
    }
    Ok(lines)
}

/// The CLI verb body: replay `scenario` at `multiple` density, kill at
/// the mid-run checkpoint, resume by replay *and* by snapshot, and
/// report. With `sessions > 1` the stream is also served through that
/// many isolated server slots across `threads` workers. `Err` is a
/// divergence report (the CI soak uploads it as an artifact).
pub fn run_verb(
    seed: u64,
    multiple: u32,
    scenario: &str,
    sessions: usize,
    threads: usize,
) -> Result<String, String> {
    let samples = schedule_for(scenario, multiple)?;
    let base = replay(seed, &samples, None)?;
    let mut out = String::new();
    out.push_str(&format!(
        "serve: replayed {scenario} at {multiple}x: {} samples, {} directives, {} checkpoints, {} dead letters\n",
        base.samples_fed,
        base.directives,
        base.checkpoints.len(),
        base.dead_letters
    ));
    out.push_str(&format!(
        "serve: final digest {:#018x} over {} trace events\n",
        base.final_digest,
        base.trace.len()
    ));
    if base.checkpoints.len() >= 2 {
        let mid = base.checkpoints.len() / 2;
        let proof = verify_boundary(seed, &samples, &base, mid)?;
        out.push_str(&format!("serve: kill/resume {proof}\n"));
    } else if scenario == REPLAY_SCENARIO {
        // The canonical scenario always spans several checkpoints; fewer
        // is a regression, not a short stream.
        return Err(format!(
            "serve: expected several checkpoints, got {}",
            base.checkpoints.len()
        ));
    } else {
        out.push_str(&format!(
            "serve: stream too short for a kill/resume proof ({} checkpoints)\n",
            base.checkpoints.len()
        ));
    }
    if sessions > 1 {
        for line in run_sessions(seed, &samples, sessions, threads)? {
            out.push_str(&format!("serve: {line}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracerec::GOLDEN_SEED;

    /// The schedule is a pure function of the checked-in golden file,
    /// and the multiple subdivides without reordering.
    #[test]
    fn schedule_is_monotone_and_scales_with_multiple() {
        let s1 = schedule(1).expect("golden trace present");
        let s4 = schedule(4).expect("golden trace present");
        assert!(!s1.is_empty());
        assert!(s4.len() > 3 * s1.len(), "{} vs {}", s4.len(), s1.len());
        for w in s1.windows(2) {
            assert!(w[1].at_s >= w[0].at_s, "schedule not monotone: {w:?}");
        }
        for w in s4.windows(2) {
            assert!(w[1].at_s >= w[0].at_s, "4x schedule not monotone: {w:?}");
        }
    }

    /// A serve replay is deterministic: same seed, same stream, same
    /// digest and byte-identical trace.
    #[test]
    fn replay_is_deterministic() {
        let samples = schedule(1).expect("golden trace present");
        let a = replay(GOLDEN_SEED, &samples, None).expect("replay");
        let b = replay(GOLDEN_SEED, &samples, None).expect("replay");
        assert!(a.checkpoints.len() >= 2, "{:?}", a.checkpoints);
        assert_eq!(a.final_digest, b.final_digest);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.directives, b.directives);
        assert_eq!(a.dead_letters, 0, "clean stream dead-lettered");
    }

    /// The verb's single mid-run kill/resume proof passes end to end,
    /// covering both the replay and the snapshot resume path.
    #[test]
    fn verb_kill_resume_proof_passes() {
        let out = run_verb(GOLDEN_SEED, 1, REPLAY_SCENARIO, 1, 1).expect("kill/resume proof");
        assert!(out.contains("replay+snapshot resume OK"), "{out}");
    }

    /// A snapshot frozen mid-run thaws into a fresh shell and, fed only
    /// the remaining stream, lands on the uninterrupted run's digest
    /// with the stitched trace byte-identical.
    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        let samples = schedule(1).expect("golden trace present");
        let base = replay(GOLDEN_SEED, &samples, None).expect("replay");
        let frozen = freeze_at_boundary(GOLDEN_SEED, &samples, 1).expect("freeze");
        assert!(frozen.samples_fed < samples.len(), "froze at end of stream");
        let thawed = snapshot_resume(GOLDEN_SEED, &samples, &frozen).expect("thaw");
        assert_eq!(thawed.final_digest, base.final_digest);
        assert_eq!(thawed.checkpoints, base.checkpoints);
        let stitched: Vec<&String> = frozen.trace_prefix.iter().chain(&thawed.trace).collect();
        let base_refs: Vec<&String> = base.trace.iter().collect();
        assert_eq!(stitched, base_refs);
    }

    /// Every golden scenario yields a servable schedule; unknown names
    /// are refused.
    #[test]
    fn any_golden_scenario_drives_the_session() {
        for scenario in crate::tracerec::SCENARIOS {
            let s = schedule_for(scenario, 1).expect(scenario);
            assert!(!s.is_empty(), "{scenario} schedule empty");
            let run = replay(GOLDEN_SEED, &s, None).expect(scenario);
            assert!(run.final_digest != 0, "{scenario} digest trivially zero");
        }
        assert!(schedule_for("fig99", 1).is_err());
    }

    /// Multi-session serving is healthy, deterministic, and identical at
    /// any thread count.
    #[test]
    fn multi_session_fleet_is_thread_count_invariant() {
        let samples = schedule(1).expect("golden trace present");
        let solo = run_sessions(GOLDEN_SEED, &samples, 3, 1).expect("fleet@1");
        let wide = run_sessions(GOLDEN_SEED, &samples, 3, 4).expect("fleet@4");
        assert_eq!(solo, wide);
        assert_eq!(solo.len(), 3);
    }
}
