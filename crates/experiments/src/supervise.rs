//! Supervision sweep: the goal workload with misbehaving applications.
//!
//! Reruns the Figure 20 goal workload (composite loop + background video,
//! 1560 s goal on a 17.4 kJ supply) with 0–4 of the applications wrapped
//! in [`Misbehavior`]:
//!
//! | k    | newly misbehaving app                                   |
//! |------|---------------------------------------------------------|
//! | ≥ 1  | video hangs at 200 s: spins at full power, stops polling |
//! | ≥ 2  | map lies: reports degraded fidelity, runs at full        |
//! | ≥ 3  | web ignores every upcall while claiming adaptability     |
//! | ≥ 4  | speech crashes at 300 s, leaking its fidelity slot       |
//!
//! Each k runs twice on the identical substrate: once with the paper's
//! unsupervised viceroy (the goal controller alone) and once with the
//! [`Supervisor`] attached. Reported per cell: goal attainment, how far
//! short the client fell, residue, and the supervisor's detection and
//! response counters.

use hw560x::EnergySource;
use machine::{Machine, MachineConfig, Pid, RunReport};
use odyssey::goal::MONITOR_OVERHEAD_W;
use odyssey::{
    GoalConfig, GoalController, GoalOutcome, PriorityTable, Supervisor, SupervisorConfig,
    SupervisorStats,
};
use odyssey_apps::composite::{composite_members, CompositeMode};
use odyssey_apps::datasets::VIDEO_CLIPS;
use odyssey_apps::{Misbehavior, VideoPlayer};
use simcore::fault::{FaultSchedule, FaultWindow};
use simcore::{SimDuration, SimRng, SimTime, TrialStats};

use crate::chaos::{CHAOS_ENERGY_J, GOAL_S};
use crate::goalrig::composite_horizon;
use crate::harness::Trials;
use crate::table::Table;

/// The swept misbehaving-app counts.
pub const KS: [usize; 5] = [0, 1, 2, 3, 4];

/// Instant the video player wedges (k ≥ 1).
const HANG_AT: SimTime = SimTime::from_secs(200);

/// Instant the speech member crashes (k ≥ 4).
const CRASH_AT: SimTime = SimTime::from_secs(300);

/// Declared sustained power per fidelity level, W, index 0 = lowest.
/// Calibrated against the attribution probe (`power_probe` below): each
/// entry sits above the app's honest peak windowed draw at that level
/// (so honest apps never overdraw), while the low entries sit far enough
/// below full-fidelity draw that claiming them while running at full
/// trips the overdraw factor. Speech is the inversion the paper
/// documents: its lowest fidelity is *local* recognition, which draws
/// more CPU power than shipping the utterance to a server.
const DECLARED_SPEECH: [f64; 2] = [6.5, 2.5];
const DECLARED_VIDEO: [f64; 4] = [0.5, 0.8, 1.2, 2.0];
const DECLARED_MAP: [f64; 4] = [0.4, 0.7, 1.1, 2.2];
const DECLARED_WEB: [f64; 5] = [0.1, 0.15, 0.2, 0.3, 0.5];

/// One (k, supervised) cell of the sweep.
#[derive(Clone, Debug)]
pub struct SuperviseCell {
    /// Number of misbehaving applications.
    pub k: usize,
    /// True if the supervisor ran this cell.
    pub supervised: bool,
    /// Fraction of trials where the supply lasted the full goal.
    pub met_fraction: f64,
    /// Fraction of trials lasting at least 95% of the goal.
    pub hit95_fraction: f64,
    /// Shortfall of run duration vs the goal, percent (0 when met).
    pub shortfall_pct: TrialStats,
    /// Residual energy at the end, J.
    pub residual: TrialStats,
    /// Total energy consumed, J.
    pub energy: TrialStats,
    /// Hang detections (watchdog + power).
    pub hangs: TrialStats,
    /// Ignored-upcall detections.
    pub ignores: TrialStats,
    /// Overdraw (lie) detections.
    pub overdraws: TrialStats,
    /// Forced datapath clamps.
    pub clamps: TrialStats,
    /// Quarantines.
    pub quarantines: TrialStats,
    /// Restarts.
    pub restarts: TrialStats,
    /// Demand-ledger entries collected from crashed apps.
    pub crash_releases: TrialStats,
    /// Declared watts redistributed to surviving apps.
    pub redistributed_w: TrialStats,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Supervise {
    /// Cells in sweep order: for each k, unsupervised then supervised.
    pub cells: Vec<SuperviseCell>,
    /// Energy supply used, J.
    pub initial_energy_j: f64,
    /// Goal duration, seconds.
    pub goal_s: u64,
}

impl Supervise {
    /// The cell for a (k, supervised) pair.
    pub fn cell(&self, k: usize, supervised: bool) -> &SuperviseCell {
        self.cells
            .iter()
            .find(|c| c.k == k && c.supervised == supervised)
            // simlint: allow(D5) — the sweep populates every (k, supervised) cell
            .expect("cell present")
    }
}

struct SuperRun {
    outcome: GoalOutcome,
    report: RunReport,
    stats: SupervisorStats,
}

/// A supervision-cell rig built but not yet run. The trace recorder
/// attaches a `TraceHandle` to the machine before running it.
#[derive(Debug)]
pub struct SuperRig {
    /// Machine with the k-misbehaving composite workload and hooks added.
    pub machine: Machine,
    /// Goal-controller handle for the outcome after the run.
    pub goal: odyssey::GoalHandle,
    /// Supervisor handle when the cell is supervised.
    pub supervisor: Option<odyssey::SupervisorHandle>,
    /// Safety-net horizon to run until.
    pub horizon: SimTime,
}

/// Builds one trial cell: the Figure 20 rig with `k` misbehaving apps,
/// optionally supervised. Both arms of a pair consume the rng
/// identically, so they face the same workload.
pub fn build_one(k: usize, supervised: bool, rng: &mut SimRng) -> SuperRig {
    let goal = SimDuration::from_secs(GOAL_S);
    let horizon = composite_horizon(goal);
    let mut m = Machine::new(MachineConfig {
        source: EnergySource::battery(CHAOS_ENERGY_J),
        monitor_overhead_w: MONITOR_OVERHEAD_W,
        ..Default::default()
    });

    // Members arrive as [speech, web, map]; wrap per k.
    let members = composite_members(
        CompositeMode::Every {
            period: SimDuration::from_secs(25),
            horizon,
        },
        true,
        rng,
    );
    let mut boxed: Vec<Box<dyn machine::Workload>> = Vec::new();
    for (i, member) in members.into_iter().enumerate() {
        let b: Box<dyn machine::Workload> = Box::new(member);
        boxed.push(match i {
            0 if k >= 4 => Box::new(Misbehavior::crash_at(b, CRASH_AT).restartable()),
            1 if k >= 3 => Box::new(Misbehavior::ignore_upcalls(b)),
            2 if k >= 2 => Box::new(Misbehavior::lie(b).restartable()),
            _ => b,
        });
    }
    let mut pids: Vec<Pid> = Vec::new();
    for b in boxed {
        pids.push(m.add_process(b));
    }
    let (speech_pid, web_pid, map_pid) = (pids[0], pids[1], pids[2]);

    let video: Box<dyn machine::Workload> =
        Box::new(VideoPlayer::adaptive(VIDEO_CLIPS[0], rng).looping_until(horizon));
    let video: Box<dyn machine::Workload> = if k >= 1 {
        let wedge = FaultSchedule::new(vec![FaultWindow {
            start: HANG_AT,
            end: horizon,
        }]);
        Box::new(Misbehavior::hang(video, wedge).restartable())
    } else {
        video
    };
    let video_pid = m.add_background_process(video);

    // Lowest to highest priority: speech, video, map, web.
    let priorities = PriorityTable::new(vec![speech_pid, video_pid, map_pid, web_pid]);
    let cfg = GoalConfig::paper(CHAOS_ENERGY_J, goal);
    let sample_period = cfg.sample_period;
    let (goal_handle, controller) = GoalController::new(cfg, priorities);
    m.add_hook(sample_period, controller);

    let sup_handle = if supervised {
        let sup_cfg = SupervisorConfig::standard();
        let period = sup_cfg.period;
        let (handle, mut sup) = Supervisor::new(sup_cfg);
        sup.watch(
            speech_pid,
            DECLARED_SPEECH.to_vec(),
            DECLARED_SPEECH.len() - 1,
        );
        sup.watch(web_pid, DECLARED_WEB.to_vec(), DECLARED_WEB.len() - 1);
        sup.watch(map_pid, DECLARED_MAP.to_vec(), DECLARED_MAP.len() - 1);
        sup.watch(video_pid, DECLARED_VIDEO.to_vec(), DECLARED_VIDEO.len() - 1);
        sup.attach_goal(goal_handle.clone());
        m.add_hook(period, sup);
        Some(handle)
    } else {
        None
    };

    SuperRig {
        machine: m,
        goal: goal_handle,
        supervisor: sup_handle,
        horizon,
    }
}

fn run_one(k: usize, supervised: bool, rng: &mut SimRng) -> SuperRun {
    let rig = build_one(k, supervised, rng);
    // simlint: allow(D5) — adopt/run on a fresh session cannot fail
    let mut session = simserve::Session::adopt(rig.machine).expect("adopt fresh machine");
    // simlint: allow(D5) — first run of a fresh session cannot fail
    let report = session.run_until(rig.horizon).expect("run adopted session");
    SuperRun {
        outcome: rig.goal.outcome(),
        report,
        stats: rig.supervisor.map(|h| h.stats()).unwrap_or_default(),
    }
}

/// Runs the default sweep.
pub fn run(trials: &Trials) -> Supervise {
    run_sweep(trials, &KS)
}

/// Runs an arbitrary sweep over misbehaving-app counts.
///
/// The fan-out unit is one *(cell, trial)* run — every trial stream is
/// keyed purely by `(seed, k, trial)`, so all `cells × trials.n` runs
/// are independent jobs. Flattening to trial granularity keeps every
/// worker busy even when the sweep has few cells (the bench scenario
/// sweeps a single k: two cells, but `2 × n` jobs), and the
/// index-ordered merge reduces each cell from its trials in trial
/// order — byte-identical to the serial run at any thread count.
pub fn run_sweep(trials: &Trials, ks: &[usize]) -> Supervise {
    let specs: Vec<(usize, bool)> = ks.iter().flat_map(|&k| [(k, false), (k, true)]).collect();
    let n = trials.n.max(1);
    let mut jobs: Vec<(usize, bool, usize)> = Vec::with_capacity(specs.len() * n);
    for &(k, supervised) in &specs {
        for i in 0..n {
            jobs.push((k, supervised, i));
        }
    }
    let root = SimRng::new(trials.seed);
    let runs = simcore::par::map(trials.threads, &jobs, |_, &(k, supervised, i)| {
        // Workload streams are keyed by k and trial only, so the
        // unsupervised and supervised cells face the identical
        // applications — a paired comparison.
        let mut rng = root.fork_indexed(&format!("supervise/{k}"), i as u64);
        run_one(k, supervised, &mut rng)
    });
    let cells = specs
        .iter()
        .zip(runs.chunks(n))
        .map(|(&(k, supervised), cell_runs)| reduce_cell(trials, k, supervised, cell_runs))
        .collect();
    Supervise {
        cells,
        initial_energy_j: CHAOS_ENERGY_J,
        goal_s: GOAL_S,
    }
}

/// Reduces one (k, supervised) cell from its `trials.n` paired trial
/// runs (in trial order).
fn reduce_cell(trials: &Trials, k: usize, supervised: bool, runs: &[SuperRun]) -> SuperviseCell {
    let mut met = 0usize;
    let mut hit95 = 0usize;
    let mut shortfall = Vec::new();
    let mut residual = Vec::new();
    let mut energy = Vec::new();
    let mut hangs = Vec::new();
    let mut ignores = Vec::new();
    let mut overdraws = Vec::new();
    let mut clamps = Vec::new();
    let mut quarantines = Vec::new();
    let mut restarts = Vec::new();
    let mut crash_releases = Vec::new();
    let mut redistributed = Vec::new();
    for run in runs {
        let dur = run.report.duration_s();
        if run.outcome.goal_met {
            met += 1;
        }
        if run.outcome.goal_met || dur >= 0.95 * GOAL_S as f64 {
            hit95 += 1;
        }
        shortfall.push(if run.outcome.goal_met {
            0.0
        } else {
            (GOAL_S as f64 - dur.min(GOAL_S as f64)) / GOAL_S as f64 * 100.0
        });
        residual.push(run.report.residual_j);
        energy.push(run.report.total_j);
        hangs.push(run.stats.hang_strikes as f64);
        ignores.push(run.stats.ignore_strikes as f64);
        overdraws.push(run.stats.overdraw_strikes as f64);
        clamps.push(run.stats.clamps as f64);
        quarantines.push(run.stats.quarantines as f64);
        restarts.push(run.stats.restarts as f64);
        crash_releases.push(run.stats.crash_releases as f64);
        redistributed.push(run.stats.redistributed_w);
    }
    SuperviseCell {
        k,
        supervised,
        met_fraction: met as f64 / trials.n as f64,
        hit95_fraction: hit95 as f64 / trials.n as f64,
        shortfall_pct: TrialStats::from_values(&shortfall),
        residual: TrialStats::from_values(&residual),
        energy: TrialStats::from_values(&energy),
        hangs: TrialStats::from_values(&hangs),
        ignores: TrialStats::from_values(&ignores),
        overdraws: TrialStats::from_values(&overdraws),
        clamps: TrialStats::from_values(&clamps),
        quarantines: TrialStats::from_values(&quarantines),
        restarts: TrialStats::from_values(&restarts),
        crash_releases: TrialStats::from_values(&crash_releases),
        redistributed_w: TrialStats::from_values(&redistributed),
    }
}

/// Renders the sweep table.
pub fn render(trials: &Trials) -> String {
    let s = run(trials);
    let mut t = Table::new(
        format!(
            "Supervision sweep: {} s goal on {:.0} J with k misbehaving apps",
            s.goal_s, s.initial_energy_j
        ),
        &[
            "k",
            "Viceroy",
            "Goal met",
            "Lasted >=95%",
            "Shortfall %",
            "Residue (J)",
            "Hangs",
            "Ignores",
            "Lies",
            "Clamps",
            "Quar.",
            "Restarts",
            "Crash GC",
            "Freed (W)",
        ],
    );
    for cell in &s.cells {
        t.push_row(vec![
            format!("{}", cell.k),
            if cell.supervised {
                "supervised"
            } else {
                "unsupervised"
            }
            .to_string(),
            format!("{:.0}%", cell.met_fraction * 100.0),
            format!("{:.0}%", cell.hit95_fraction * 100.0),
            format!(
                "{:.1} ({:.1})",
                cell.shortfall_pct.mean, cell.shortfall_pct.sd
            ),
            format!("{:.0} ({:.0})", cell.residual.mean, cell.residual.sd),
            format!("{:.1}", cell.hangs.mean),
            format!("{:.1}", cell.ignores.mean),
            format!("{:.1}", cell.overdraws.mean),
            format!("{:.1}", cell.clamps.mean),
            format!("{:.1}", cell.quarantines.mean),
            format!("{:.1}", cell.restarts.mean),
            format!("{:.1}", cell.crash_releases.mean),
            format!("{:.1}", cell.redistributed_w.mean),
        ]);
    }
    t.with_caption(
        "Beyond the paper: a single wedged app starves the unsupervised viceroy of its \
         energy budget; the supervisor detects hangs, lies, ignored upcalls, and \
         crashes, quarantines or clamps the offenders, and holds the goal within 5%.",
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With no misbehaving apps both viceroys meet the goal, and the
    /// supervisor never fires: the default path is untouched.
    #[test]
    fn clean_cells_meet_goal_and_supervisor_is_silent() {
        let s = run_sweep(&Trials::single(), &[0]);
        let unsup = s.cell(0, false);
        let sup = s.cell(0, true);
        assert_eq!(unsup.met_fraction, 1.0, "{unsup:?}");
        assert_eq!(sup.met_fraction, 1.0, "{sup:?}");
        assert_eq!(sup.quarantines.mean, 0.0, "{sup:?}");
        assert_eq!(sup.clamps.mean, 0.0, "{sup:?}");
        assert_eq!(sup.hangs.mean, 0.0, "{sup:?}");
        assert_eq!(sup.overdraws.mean, 0.0, "{sup:?}");
    }

    /// The acceptance claim: with up to 4 misbehaving apps the supervised
    /// viceroy holds the battery-duration goal within 5% while the
    /// unsupervised one misses it.
    #[test]
    fn supervised_holds_goal_where_unsupervised_misses() {
        let s = run_sweep(&Trials::single(), &KS);
        for &k in &KS[1..] {
            let unsup = s.cell(k, false);
            let sup = s.cell(k, true);
            assert!(
                unsup.met_fraction < 1.0,
                "k={k}: unsupervised unexpectedly met the goal: {unsup:?}"
            );
            assert_eq!(
                sup.hit95_fraction, 1.0,
                "k={k}: supervised missed 95%: {sup:?}"
            );
            assert!(sup.quarantines.mean >= 1.0, "k={k}: {sup:?}");
        }
        // Each misbehavior class is caught once present. A wedge
        // monopolizes the CPU, so PowerScope attributes near-platform
        // power to it and the overdraw cross-check usually fires seconds
        // before the 30 s watchdog matures — any detector counts here
        // (the watchdog-only path is unit-tested in odyssey).
        let c1 = s.cell(1, true);
        assert!(
            c1.hangs.mean + c1.ignores.mean + c1.overdraws.mean >= 1.0,
            "{c1:?}"
        );
        assert!(s.cell(2, true).overdraws.mean >= 1.0);
        assert!(s.cell(4, true).crash_releases.mean >= 1.0);
    }

    /// Same seed, same sweep — byte-identical cells.
    #[test]
    fn sweep_is_deterministic() {
        let t = Trials {
            n: 1,
            seed: 7,
            threads: 1,
        };
        let a = format!("{:?}", run_sweep(&t, &[1]).cells);
        let b = format!("{:?}", run_sweep(&t, &[1]).cells);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod power_probe {
    use super::*;
    use machine::{ControlHook, MachineView};
    use powerscope::AttributionFeed;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Probe {
        feed: AttributionFeed,
        names: Vec<&'static str>,
        max: Rc<RefCell<Vec<f64>>>,
    }

    impl ControlHook for Probe {
        fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
            let procs = view.processes();
            for (i, _) in self.names.iter().enumerate() {
                let pid = procs[i].pid;
                let e = view.attributed_energy_j(pid);
                if let Some(p) = self.feed.observe(i, now, e) {
                    let mut max = self.max.borrow_mut();
                    if p > max[i] {
                        max[i] = p;
                    }
                }
            }
        }
    }

    /// Calibration probe: prints each app's peak smoothed attributed
    /// power at full and lowest fidelity. Run with
    /// `cargo test -p experiments power_probe -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn print_attributed_power_envelope() {
        for lowest in [false, true] {
            let mut rng = SimRng::new(17);
            let horizon = SimTime::from_secs(900);
            let mut m = Machine::new(MachineConfig::default());
            let members = composite_members(
                CompositeMode::Every {
                    period: SimDuration::from_secs(25),
                    horizon,
                },
                false,
                &mut rng,
            );
            let mut names = Vec::new();
            for member in members {
                let member = if lowest {
                    member.at_lowest_fidelity()
                } else {
                    member
                };
                names.push(machine::Workload::name(&member));
                m.add_process(Box::new(member));
            }
            let mut video = VideoPlayer::adaptive(VIDEO_CLIPS[0], &mut rng).looping_until(horizon);
            if lowest {
                while machine::Workload::on_upcall(
                    &mut video,
                    machine::AdaptDirection::Degrade,
                    SimTime::ZERO,
                ) {}
            }
            names.push(machine::Workload::name(&video));
            m.add_background_process(Box::new(video));
            let max = Rc::new(RefCell::new(vec![0.0; names.len()]));
            m.add_hook(
                SimDuration::from_secs(1),
                Box::new(Probe {
                    feed: AttributionFeed::new(),
                    names: names.clone(),
                    max: max.clone(),
                }),
            );
            m.run_until(horizon);
            for (n, p) in names.iter().zip(max.borrow().iter()) {
                eprintln!("PROBE lowest={lowest} {n}: peak EMA {p:.2} W");
            }
        }
    }
}
