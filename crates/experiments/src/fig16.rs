//! Figure 16: summary of the energy impact of fidelity.
//!
//! For every application (and think time, where applicable) the table
//! shows min-max energy across the four data objects, normalized to each
//! object's baseline: hardware power management alone, fidelity reduction
//! alone (lowest fidelity, no power management), and both combined.
//! The paper's headline statistics come from this table: fidelity
//! reduction saves 7-72% (mean 36%), combined 31-76% (mean ~50%).

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{MAPS, UTTERANCES, VIDEO_CLIPS, WEB_IMAGES};
use odyssey_apps::map::{MapFilter, MapViewer};
use odyssey_apps::{
    MapFidelity, SpeechApp, SpeechStrategy, VideoPlayer, VideoVariant, WebBrowser, WebFidelity,
};
use simcore::{SimDuration, SimRng};

use crate::harness::{energy_stats, run_trials, Trials};
use crate::table::{band, Table};

/// The four normalized conditions of the summary table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Condition {
    /// Full fidelity, no power management (the 1.00 column).
    Baseline,
    /// Full fidelity with hardware power management.
    HardwarePm,
    /// Lowest fidelity without hardware power management.
    FidelityReduction,
    /// Lowest fidelity with hardware power management.
    Combined,
}

impl Condition {
    /// All conditions in column order.
    pub fn all() -> [Condition; 4] {
        [
            Condition::Baseline,
            Condition::HardwarePm,
            Condition::FidelityReduction,
            Condition::Combined,
        ]
    }

    /// Column header.
    pub fn name(self) -> &'static str {
        match self {
            Condition::Baseline => "Baseline",
            Condition::HardwarePm => "Hardware Power Mgmt.",
            Condition::FidelityReduction => "Fidelity Reduction",
            Condition::Combined => "Combined",
        }
    }

    fn lowest(self) -> bool {
        matches!(self, Condition::FidelityReduction | Condition::Combined)
    }

    fn pm(self) -> bool {
        matches!(self, Condition::HardwarePm | Condition::Combined)
    }
}

/// One row of the summary: an application at one think time.
#[derive(Clone, Debug)]
pub struct SummaryRow {
    /// Application name.
    pub app: &'static str,
    /// Think time, seconds (`None` for video and speech).
    pub think_s: Option<f64>,
    /// Per-condition (min, max) normalized energy across data objects.
    pub bands: Vec<(Condition, f64, f64)>,
    /// Per-condition mean normalized energy across data objects.
    pub means: Vec<(Condition, f64)>,
}

/// The full summary.
#[derive(Clone, Debug)]
pub struct Fig16 {
    /// All rows in figure order.
    pub rows: Vec<SummaryRow>,
}

impl Fig16 {
    /// (min, max) normalized energy for a row and condition.
    pub fn band_of(&self, app: &str, think_s: Option<f64>, c: Condition) -> (f64, f64) {
        let row = self
            .rows
            .iter()
            .find(|r| r.app == app && r.think_s == think_s)
            .unwrap_or_else(|| panic!("no row ({app}, {think_s:?})"));
        row.bands
            .iter()
            .find(|(rc, _, _)| *rc == c)
            .map(|(_, lo, hi)| (*lo, *hi))
            // simlint: allow(D5) — rows carry a band for every condition by construction
            .expect("condition present")
    }

    /// Mean normalized energy over every row for a condition (the paper's
    /// "mean of 36% savings" style aggregate).
    pub fn grand_mean(&self, c: Condition) -> f64 {
        let values: Vec<f64> = self
            .rows
            .iter()
            .flat_map(|r| r.means.iter().filter(|(rc, _)| *rc == c).map(|(_, m)| *m))
            .collect();
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn video_machine(obj: usize, c: Condition, rng: &mut SimRng) -> Machine {
    let cfg = if c.pm() {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let variant = if c.lowest() {
        VideoVariant::Combined
    } else {
        VideoVariant::Full
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(VideoPlayer::fixed(VIDEO_CLIPS[obj], variant, rng)));
    m
}

fn speech_machine(obj: usize, c: Condition, rng: &mut SimRng) -> Machine {
    let cfg = if c.pm() {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    // Lowest speech fidelity: hybrid strategy with the reduced model —
    // the cheapest configuration of Figure 8.
    let (strategy, reduced) = if c.lowest() {
        (SpeechStrategy::Hybrid, true)
    } else {
        (SpeechStrategy::Local, false)
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(SpeechApp::fixed(
        vec![UTTERANCES[obj]],
        strategy,
        reduced,
        rng,
    )));
    m
}

fn map_machine(obj: usize, c: Condition, think_s: f64, rng: &mut SimRng) -> Machine {
    let cfg = if c.pm() {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let fidelity = if c.lowest() {
        MapFidelity {
            filter: MapFilter::Secondary,
            cropped: true,
        }
    } else {
        MapFidelity::full()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(
        MapViewer::fixed(vec![MAPS[obj]], fidelity, rng)
            .with_think_time(SimDuration::from_secs_f64(think_s)),
    ));
    m
}

fn web_machine(obj: usize, c: Condition, think_s: f64, rng: &mut SimRng) -> Machine {
    let cfg = if c.pm() {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let fidelity = if c.lowest() {
        WebFidelity::Jpeg5
    } else {
        WebFidelity::Full
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(
        WebBrowser::fixed(vec![WEB_IMAGES[obj]], fidelity, rng)
            .with_think_time(SimDuration::from_secs_f64(think_s)),
    ));
    m
}

/// An application row of the summary, carrying its think time where the
/// workload has one. Each `(row, object, condition)` triple is one
/// independent fan-out cell.
#[derive(Clone, Copy, Debug)]
enum RowKind {
    Video,
    Speech,
    Map(f64),
    Web(f64),
}

/// Mean trial energy of one `(row, object, condition)` cell, J.
///
/// The trial label is a pure function of the cell, so the cell is a
/// pure function of `(trials.seed, trials.n, cell)` — which is what
/// lets the whole summary fan cells across the pool in any order.
fn cell_energy_j(trials: &Trials, kind: RowKind, o: usize, c: Condition) -> f64 {
    match kind {
        RowKind::Video => {
            let label = format!("fig16/video/{o}/{c:?}");
            energy_stats(&run_trials(trials, &label, |rng| video_machine(o, c, rng))).mean
        }
        RowKind::Speech => {
            let label = format!("fig16/speech/{o}/{c:?}");
            energy_stats(&run_trials(trials, &label, |rng| speech_machine(o, c, rng))).mean
        }
        RowKind::Map(think) => {
            let label = format!("fig16/map/{o}/{c:?}/{think}");
            energy_stats(&run_trials(trials, &label, |rng| {
                map_machine(o, c, think, rng)
            }))
            .mean
        }
        RowKind::Web(think) => {
            let label = format!("fig16/web/{o}/{c:?}/{think}");
            energy_stats(&run_trials(trials, &label, |rng| {
                web_machine(o, c, think, rng)
            }))
            .mean
        }
    }
}

/// Runs the full summary (the paper's think-time rows: 0, 5, 10, 20 s for
/// map and web).
pub fn run(trials: &Trials) -> Fig16 {
    run_with_thinks(trials, &[0.0, 5.0, 10.0, 20.0])
}

/// Runs the summary with a chosen set of think times (tests use fewer).
///
/// The fan-out unit is one `(row, object, condition)` cell — a whole
/// trial set — so the summary parallelizes as a single wide dispatch of
/// coarse jobs instead of dozens of tiny per-trial dispatches (the
/// shape that used to *lose* wall-clock to spawn overhead; see
/// DESIGN.md §18). Cells run their trials serially; parallelism lives
/// at this level only. Each object's baseline-condition cell is also
/// computed exactly once and reused as the normalizer, where the old
/// per-row closure recomputed it — same pure value, same output bytes,
/// less work.
pub fn run_with_thinks(trials: &Trials, thinks: &[f64]) -> Fig16 {
    let mut kinds: Vec<(&'static str, Option<f64>, RowKind)> = vec![
        ("Video", None, RowKind::Video),
        ("Speech", None, RowKind::Speech),
    ];
    for &think in thinks {
        kinds.push(("Map", Some(think), RowKind::Map(think)));
    }
    for &think in thinks {
        kinds.push(("Web", Some(think), RowKind::Web(think)));
    }

    let conditions = Condition::all();
    let mut cells: Vec<(RowKind, usize, Condition)> = Vec::new();
    for (_, _, kind) in &kinds {
        for o in 0..4 {
            for c in conditions {
                cells.push((*kind, o, c));
            }
        }
    }
    let inner = trials.with_threads(1);
    let energies = simcore::par::map(trials.threads, &cells, |_, &(kind, o, c)| {
        cell_energy_j(&inner, kind, o, c)
    });
    // Cell value lookup: cells are row-major, object-major, condition-
    // minor, so the flat index is a pure function of the coordinates.
    let value = |row: usize, o: usize, ci: usize| energies[(row * 4 + o) * conditions.len() + ci];

    let mut rows = Vec::new();
    for (row, &(app, think_s, _)) in kinds.iter().enumerate() {
        // Baseline energies per object, the normalizers (Baseline is
        // condition index 0 in `Condition::all()` order).
        let baselines: Vec<f64> = (0..4).map(|o| value(row, o, 0)).collect();
        let mut bands = Vec::new();
        let mut means = Vec::new();
        for (ci, c) in conditions.into_iter().enumerate() {
            let normalized: Vec<f64> = (0..4).map(|o| value(row, o, ci) / baselines[o]).collect();
            let lo = normalized.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = normalized.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = normalized.iter().sum::<f64>() / normalized.len() as f64;
            bands.push((c, lo, hi));
            means.push((c, mean));
        }
        rows.push(SummaryRow {
            app,
            think_s,
            bands,
            means,
        });
    }
    Fig16 { rows }
}

/// Renders the normalized summary table.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut t = Table::new(
        "Figure 16: Summary of energy impact of fidelity (normalized to baseline)",
        &[
            "Application",
            "Think (s)",
            "Baseline",
            "Hardware Power Mgmt.",
            "Fidelity Reduction",
            "Combined",
        ],
    );
    for r in &f.rows {
        let mut row = vec![
            r.app.to_string(),
            r.think_s.map(|s| format!("{s}")).unwrap_or("N/A".into()),
        ];
        for (_, lo, hi) in &r.bands {
            row.push(band(*lo, *hi));
        }
        t.push_row(row);
    }
    let fr = 1.0 - f.grand_mean(Condition::FidelityReduction);
    let comb = 1.0 - f.grand_mean(Condition::Combined);
    t.with_caption(format!(
        "Mean savings: fidelity reduction {:.0}% (paper: 36%), combined {:.0}% (paper: ~50%).",
        fr * 100.0,
        comb * 100.0
    ))
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig16 {
        // One trial, one think time: this module aggregates many runs.
        run_with_thinks(&Trials::single(), &[5.0])
    }

    #[test]
    fn baseline_column_is_unity() {
        for r in fig().rows {
            let (lo, hi) = r
                .bands
                .iter()
                .find(|(c, _, _)| *c == Condition::Baseline)
                .map(|(_, lo, hi)| (*lo, *hi))
                .unwrap();
            assert!((lo - 1.0).abs() < 1e-9 && (hi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn combined_beats_either_alone() {
        let f = fig();
        for r in &f.rows {
            let mean = |c: Condition| r.means.iter().find(|(rc, _)| *rc == c).unwrap().1;
            assert!(
                mean(Condition::Combined) <= mean(Condition::HardwarePm) + 1e-9,
                "{}: combined worse than PM alone",
                r.app
            );
            assert!(
                mean(Condition::Combined) <= mean(Condition::FidelityReduction) + 1e-9,
                "{}: combined worse than fidelity alone",
                r.app
            );
        }
    }

    /// Headline aggregate bands: fidelity-reduction mean savings near the
    /// paper's 36%, combined near 50%.
    #[test]
    fn headline_means_in_band() {
        let f = fig();
        let fr = 1.0 - f.grand_mean(Condition::FidelityReduction);
        let comb = 1.0 - f.grand_mean(Condition::Combined);
        assert!((0.20..=0.55).contains(&fr), "fidelity-reduction mean {fr}");
        assert!((0.33..=0.65).contains(&comb), "combined mean {comb}");
        assert!(comb > fr, "combined must beat fidelity alone");
    }
}
