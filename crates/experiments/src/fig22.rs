//! Figure 22 (bursty workloads): goal-directed adaptation under an
//! irregular stochastic workload.
//!
//! "We used a simple stochastic model to construct an irregular workload"
//! — the four applications independently flip between active and idle
//! each minute with probability 0.10. Five trials, each with a different
//! randomly-generated workload, run against a 13,000 J supply; Odyssey
//! must meet the time goal despite the burstiness.

use odyssey::GoalConfig;
use simcore::{SimDuration, SimRng};

use crate::fig20::APPS;
use crate::goalrig::{run_bursty_goal, GoalRun};
use crate::harness::Trials;
use crate::table::Table;

/// Energy supply, J. The paper used 13,000 J; our calibrated platform
/// draws more at the wall for the same workload (see EXPERIMENTS.md), so
/// the supply is scaled to keep the goal inside the same adaptation
/// envelope (full fidelity needs ~10.3-13 W across seeds, lowest
/// ~8.2-9.9 W; the goal's 10.3 W budget forces adaptation in every seed
/// yet stays feasible).
pub const INITIAL_ENERGY_J: f64 = 16_800.0;

/// Goal duration, seconds (26 minutes).
pub const GOAL_S: u64 = 1560;

/// One trial's row.
#[derive(Clone, Debug)]
pub struct BurstyTrial {
    /// Trial index (seeded independently).
    pub trial: usize,
    /// Whether the supply lasted the goal.
    pub goal_met: bool,
    /// Residual energy, J.
    pub residual_j: f64,
    /// Adaptations per application, in [`crate::fig20::APPS`] order.
    pub adaptations: Vec<usize>,
}

/// The full experiment.
#[derive(Clone, Debug)]
pub struct Fig22 {
    /// One row per trial.
    pub trials: Vec<BurstyTrial>,
}

impl Fig22 {
    /// Fraction of trials that met the goal.
    pub fn met_fraction(&self) -> f64 {
        self.trials.iter().filter(|t| t.goal_met).count() as f64 / self.trials.len() as f64
    }
}

/// Runs the paper's configuration.
pub fn run(trials: &Trials) -> Fig22 {
    run_config(trials, GOAL_S, INITIAL_ENERGY_J)
}

/// Runs a custom configuration (tests use shorter goals).
pub fn run_config(trials: &Trials, goal_s: u64, initial_j: f64) -> Fig22 {
    let root = SimRng::new(trials.seed);
    let rows = (0..trials.n)
        .map(|i| {
            let mut rng = root.fork_indexed("fig22", i as u64);
            let cfg = GoalConfig::paper(initial_j, SimDuration::from_secs(goal_s));
            let run: GoalRun = run_bursty_goal(cfg, &mut rng);
            BurstyTrial {
                trial: i + 1,
                goal_met: run.outcome.goal_met,
                residual_j: run.report.residual_j,
                adaptations: APPS.iter().map(|a| run.adaptations_of(a)).collect(),
            }
        })
        .collect();
    Fig22 { trials: rows }
}

/// Renders the per-trial table.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut t = Table::new(
        format!("Figure 22: Bursty workloads (goal {GOAL_S}s, {INITIAL_ENERGY_J:.0} J)"),
        &[
            "Trial",
            "Goal Met",
            "Residual (J)",
            "Adapt speech",
            "Adapt video",
            "Adapt map",
            "Adapt web",
        ],
    );
    for r in &f.trials {
        let mut row = vec![
            r.trial.to_string(),
            if r.goal_met { "Yes" } else { "No" }.to_string(),
            format!("{:.0}", r.residual_j),
        ];
        for a in &r.adaptations {
            row.push(a.to_string());
        }
        t.push_row(row);
    }
    t.with_caption("Paper: the goal was met in every trial despite the bursty workload.")
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_goals_are_met() {
        let f = run_config(
            &Trials {
                n: 3,
                seed: 42,
                threads: 1,
            },
            GOAL_S,
            INITIAL_ENERGY_J,
        );
        assert!(
            f.met_fraction() >= 2.0 / 3.0,
            "met only {:.0}%",
            f.met_fraction() * 100.0
        );
        for t in &f.trials {
            if t.goal_met {
                assert!(
                    t.residual_j < INITIAL_ENERGY_J * 0.25,
                    "trial {} residual {:.0} J too conservative",
                    t.trial,
                    t.residual_j
                );
            }
        }
    }

    #[test]
    fn trials_differ() {
        let f = run_config(
            &Trials {
                n: 2,
                seed: 42,
                threads: 1,
            },
            900,
            INITIAL_ENERGY_J,
        );
        assert_ne!(
            f.trials[0].residual_j, f.trials[1].residual_j,
            "different seeds must give different workloads"
        );
    }
}
