#![forbid(unsafe_code)]
//! Reproduction harness: one module per table/figure of the paper.
//!
//! Every module exposes `run(&Trials) -> <figure-specific result>` plus a
//! `render` path producing the text table the CLI prints. Results carry
//! structured numbers so integration tests can assert the paper's bands
//! (EXPERIMENTS.md records paper-vs-measured for each).
//!
//! | Module   | Paper artefact                                        |
//! |----------|-------------------------------------------------------|
//! | [`fig2`] | Figure 2: sample PowerScope energy profile            |
//! | [`fig4`] | Figure 4: 560X component power table                  |
//! | [`fig6`] | Figure 6: video energy vs fidelity                    |
//! | [`fig8`] | Figure 8: speech energy vs fidelity/strategy          |
//! | [`fig10`]| Figure 10: map energy vs fidelity                     |
//! | [`fig11`]| Figure 11: map energy vs think time + linear model    |
//! | [`fig13`]| Figure 13: web energy vs fidelity                     |
//! | [`fig14`]| Figure 14: web energy vs think time + linear model    |
//! | [`fig15`]| Figure 15: concurrency effects                        |
//! | [`fig16`]| Figure 16: normalized summary across applications     |
//! | [`fig18`]| Figure 18: zoned backlighting projection              |
//! | [`fig19`]| Figure 19: goal-directed adaptation traces            |
//! | [`fig20`]| Figure 20: goal table (1200-1560 s)                   |
//! | [`fig21`]| Figure 21: smoothing half-life sensitivity            |
//! | [`fig22`]| Figure 22: bursty stochastic workloads                |
//! | [`sec54`]| Section 5.4: 90 kJ, 2:45 h goal + 30 min extension    |
//! | [`headline`]| Section 1/3.8: overall savings summary             |
//! | [`ablate`]| Controller design-choice ablations (beyond the paper)|
//! | [`chaos`] | Fault-intensity sweep: paper vs hardened controller   |
//! | [`supervise`] | Misbehaving apps: unsupervised vs supervised viceroy |
//! | [`serve`] | Always-on serving session: golden-trace replay with kill/resume proof |
//! | [`energymap`] | Per-call-path energy tables + regression gate   |

pub mod ablate;
pub mod barchart;
pub mod benchcli;
pub mod chaos;
pub mod energymap;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig4;
pub mod fig6;
pub mod fig8;
pub mod fuzz;
pub mod goalrig;
pub mod harness;
pub mod headline;
pub mod sec54;
pub mod serve;
pub mod supervise;
pub mod table;
pub mod tracerec;

pub use harness::Trials;
pub use table::Table;
