//! Simulated time.
//!
//! Time is kept in integer microseconds since the start of a simulation run.
//! Microsecond resolution is fine enough to resolve single network packets
//! on the paper's 2 Mb/s WaveLAN (a 1500-byte packet lasts 6 ms) and single
//! PowerScope samples (~1.6 ms apart), while `u64` microseconds give a range
//! of ~584,000 years — no overflow concerns for multi-hour battery goals.
//!
//! Integer time also makes event ordering exact: two events scheduled for
//! the same instant are ordered by insertion sequence, never by
//! floating-point noise.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds per second, as the underlying tick count.
pub const TICKS_PER_SEC: u64 = 1_000_000;

/// An instant in simulated time, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(5);
/// assert_eq!(t.as_secs_f64(), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if the microsecond count overflows `u64` (~584,000 years).
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(TICKS_PER_SEC) {
            Some(us) => SimTime(us),
            None => panic!("SimTime::from_secs overflows u64 microseconds"),
        }
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        SimTime((s * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`; simulation clocks never run
    /// backwards, so this indicates a scheduling bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // simlint: allow(D5) — overflow guard; panicking is since()'s documented contract
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the microsecond count overflows `u64`.
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000) {
            Some(us) => SimDuration(us),
            None => panic!("SimDuration::from_millis overflows u64 microseconds"),
        }
    }

    /// Creates a duration from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if the microsecond count overflows `u64` (~584,000 years).
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(TICKS_PER_SEC) {
            Some(us) => SimDuration(us),
            None => panic!("SimDuration::from_secs overflows u64 microseconds"),
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * TICKS_PER_SEC as f64).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimTime {
    /// Addition that clamps at the end of representable time instead of
    /// panicking — for horizon arithmetic on multi-month runs.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // simlint: allow(D5) — overflow guard; Add's documented panic contract
                .expect("SimTime addition overflows u64 microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // simlint: allow(D5) — underflow guard; Sub's documented panic contract
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl SimDuration {
    /// Addition that clamps at the maximum representable duration.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                // simlint: allow(D5) — overflow guard; Add's documented panic contract
                .expect("SimDuration addition overflows u64 microseconds"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // simlint: allow(D5) — underflow guard; Sub's documented panic contract
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                // simlint: allow(D5) — overflow guard; Mul's documented panic contract
                .expect("SimDuration multiplication overflows u64 microseconds"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(250).as_secs_f64(), 0.25);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.000_001).as_micros(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs_f64(), 14.0);
        assert_eq!((t - d).as_secs_f64(), 6.0);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(SimTime::from_secs(7)), SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_secs_f64(2.5));
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(y.saturating_sub(x), x);
        assert_eq!(x.saturating_sub(y), SimDuration::ZERO);
    }

    /// Thirty-plus simulated days fit comfortably and arithmetic on them
    /// stays exact: the audit target for very long runs.
    #[test]
    fn month_long_runs_do_not_wrap() {
        let month = SimDuration::from_secs(45 * 24 * 3600);
        let t = SimTime::ZERO + month + month;
        assert_eq!(t.as_micros(), 2 * 45 * 24 * 3600 * TICKS_PER_SEC);
        assert_eq!(t.since(SimTime::ZERO + month), month);
        // A year of 1-second steps, accumulated, equals the year.
        let year = SimDuration::from_secs(365 * 24 * 3600);
        assert_eq!(SimDuration::from_secs(24 * 3600) * 365, year);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_secs_overflow_is_detected() {
        let _ = SimTime::from_secs(u64::MAX / 2);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn addition_overflow_is_detected() {
        let _ = SimTime::from_micros(u64::MAX) + SimDuration::from_micros(1);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn multiplication_overflow_is_detected() {
        let _ = SimDuration::from_secs(1) * u64::MAX;
    }

    #[test]
    fn saturating_add_clamps_instead_of_wrapping() {
        let top = SimTime::from_micros(u64::MAX);
        assert_eq!(top.saturating_add(SimDuration::from_secs(1)), top);
        let d = SimDuration::from_micros(u64::MAX);
        assert_eq!(d.saturating_add(d), d);
        // Far from the boundary it agrees with plain addition.
        assert_eq!(
            SimTime::from_secs(30 * 24 * 3600).saturating_add(SimDuration::from_secs(1)),
            SimTime::from_secs(30 * 24 * 3600 + 1)
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis_for_test(1500).to_string(), "1.500s");
    }

    impl SimTime {
        fn from_millis_for_test(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }
}
