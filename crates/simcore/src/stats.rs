//! Trial statistics in the form the paper reports them.
//!
//! Every figure in the paper is "the mean of five (or ten) trials" with
//! error bars showing 90% confidence intervals, and Figures 11 and 14 fit
//! least-squares linear models to energy-vs-think-time data. This module
//! provides exactly those reductions: [`TrialStats`] (mean, sample standard
//! deviation, 90% CI half-width using Student's t) and [`LinearFit`].

/// Two-sided 90% Student's t critical values by degrees of freedom (1..=30).
///
/// The paper runs 5- and 10-trial experiments, so small-sample correctness
/// matters; beyond 30 degrees of freedom we fall back to the normal value.
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];

const Z90: f64 = 1.645;

/// Summary of a set of repeated trials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialStats {
    /// Number of trials.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); zero for n < 2.
    pub sd: f64,
    /// Half-width of the two-sided 90% confidence interval for the mean;
    /// zero for n < 2.
    pub ci90: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl TrialStats {
    /// Computes statistics over a slice of trial results.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite entries.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = simcore::TrialStats::from_values(&[10.0, 12.0, 11.0, 13.0, 9.0]);
    /// assert_eq!(s.n, 5);
    /// assert!((s.mean - 11.0).abs() < 1e-12);
    /// ```
    pub fn from_values(values: &[f64]) -> TrialStats {
        assert!(!values.is_empty(), "no trials");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite trial value"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        let (sd, ci90) = if n >= 2 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            let sd = var.sqrt();
            let t = T90.get(n - 2).copied().unwrap_or(Z90);
            (sd, t * sd / (n as f64).sqrt())
        } else {
            (0.0, 0.0)
        };
        TrialStats {
            n,
            mean,
            sd,
            ci90,
            min,
            max,
        }
    }

    /// Relative 90% CI half-width, `ci90 / mean` (0 when the mean is 0).
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci90 / self.mean
        }
    }
}

/// Least-squares fit `y = intercept + slope * x`.
///
/// Used for the paper's linear energy model `E_t = E_0 + t * P_B`
/// (Sections 3.5.2 and 3.6.2), where the slope recovers the background
/// power and the intercept the zero-think-time energy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Estimated intercept (energy at zero think time).
    pub intercept: f64,
    /// Estimated slope (background power, W, when x is seconds and y Joules).
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a line to `(x, y)` points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or all `x` are identical.
    pub fn fit(points: &[(f64, f64)]) -> LinearFit {
        assert!(points.len() >= 2, "need at least two points");
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let mx = sx / n;
        let my = sy / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
        assert!(sxx > 0.0, "all x values identical");
        let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        };
        LinearFit {
            intercept,
            slope,
            r_squared,
        }
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used where trials are too numerous to buffer, e.g. per-sample profiler
/// noise checks.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations so far (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_stats_basics() {
        let s = TrialStats::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd of this classic set is sqrt(32/7).
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_trial_has_zero_spread() {
        let s = TrialStats::from_values(&[42.0]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci90, 0.0);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn ci_uses_t_distribution_for_small_n() {
        // For n = 5, t(4 dof, 90%) = 2.132.
        let s = TrialStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let expected = 2.132 * s.sd / 5.0f64.sqrt();
        assert!((s.ci90 - expected).abs() < 1e-12);
    }

    #[test]
    fn ci_falls_back_to_normal_for_large_n() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = TrialStats::from_values(&values);
        let expected = Z90 * s.sd / 10.0;
        assert!((s.ci90 - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn empty_trials_panic() {
        let _ = TrialStats::from_values(&[]);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.5 * i as f64)).collect();
        let fit = LinearFit::fit(&pts);
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 53.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_degrades_with_noise() {
        let pts = [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 5.0), (4.0, 3.0)];
        let fit = LinearFit::fit(&pts);
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.3);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn linear_fit_rejects_vertical_data() {
        let _ = LinearFit::fit(&[(1.0, 0.0), (1.0, 5.0)]);
    }

    #[test]
    fn online_stats_matches_batch() {
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut o = OnlineStats::new();
        for v in values {
            o.push(v);
        }
        let batch = TrialStats::from_values(&values);
        assert_eq!(o.count(), 8);
        assert!((o.mean() - batch.mean).abs() < 1e-12);
        assert!((o.sd() - batch.sd).abs() < 1e-12);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let o = OnlineStats::new();
        assert_eq!(o.count(), 0);
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
    }
}
