//! Deterministic fault timelines.
//!
//! Real mobile substrates are hostile: wireless links flap, profiler
//! samples vanish, battery gauges lie. To exercise the control plane
//! against that world *reproducibly*, every fault in the workspace is
//! drawn ahead of time from a [`SimRng`] stream into a [`FaultSchedule`] —
//! a sorted set of windows during which one fault class is active. Two
//! runs with the same seed replay bit-identical fault timelines, so chaos
//! experiments regress like any other experiment.
//!
//! A [`FaultPlan`] is the generative description (mean gap between fault
//! onsets, mean fault length); compiling it against a horizon yields the
//! concrete schedule. Plans scale linearly with an *intensity* knob in
//! `[0, 1]` so experiments can sweep from a benign bench setup to a
//! hostile field deployment.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One interval during which a fault is active: `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// Fault onset.
    pub start: SimTime,
    /// Fault clearance (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// True while the fault is active.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Length of the window.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Generative description of one fault class: a renewal process with
/// exponentially distributed gaps and lengths.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Mean quiet time between the end of one fault and the next onset.
    pub mean_gap: SimDuration,
    /// Mean fault duration.
    pub mean_len: SimDuration,
}

impl FaultPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero (a zero gap or length collapses
    /// the renewal process).
    pub fn new(mean_gap: SimDuration, mean_len: SimDuration) -> Self {
        assert!(!mean_gap.is_zero(), "fault plan needs a positive mean gap");
        assert!(
            !mean_len.is_zero(),
            "fault plan needs a positive mean length"
        );
        FaultPlan { mean_gap, mean_len }
    }

    /// Compiles the plan into a concrete schedule over `[0, horizon)`.
    ///
    /// Gaps and lengths are drawn from `rng` (exponential, i.e. Poisson
    /// fault onsets); the result depends only on the rng stream, so a
    /// forked, labelled stream gives a reproducible timeline that is
    /// independent of every other consumer of randomness.
    pub fn schedule(&self, rng: &mut SimRng, horizon: SimTime) -> FaultSchedule {
        let mut windows = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(rng.exponential(self.mean_gap.as_secs_f64()));
            let len = SimDuration::from_secs_f64(
                rng.exponential(self.mean_len.as_secs_f64())
                    .max(self.mean_len.as_secs_f64() * 0.05),
            );
            // Saturating arithmetic: a horizon near the end of representable
            // time (multi-month soak runs) must clamp, not wrap.
            let start = t.saturating_add(gap);
            if start >= horizon {
                break;
            }
            let end = start.saturating_add(len).min(horizon);
            windows.push(FaultWindow { start, end });
            t = end;
        }
        FaultSchedule::new(windows)
    }
}

/// A sorted, non-overlapping set of fault windows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// A schedule with no faults.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from windows, sorting them and merging overlaps.
    ///
    /// # Panics
    ///
    /// Panics on a window whose end precedes its start.
    pub fn new(mut windows: Vec<FaultWindow>) -> Self {
        for w in &windows {
            assert!(w.start <= w.end, "fault window ends before it starts");
        }
        windows.sort_by_key(|w| w.start);
        let mut merged: Vec<FaultWindow> = Vec::with_capacity(windows.len());
        for w in windows {
            if w.start == w.end {
                continue; // zero-length faults are no faults
            }
            match merged.last_mut() {
                Some(prev) if w.start <= prev.end => prev.end = prev.end.max(w.end),
                _ => merged.push(w),
            }
        }
        FaultSchedule { windows: merged }
    }

    /// The windows, sorted by start.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True if the schedule has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// True while any fault window covers `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        // Binary search for the last window starting at or before `t`.
        match self.windows.partition_point(|w| w.start <= t) {
            0 => false,
            i => self.windows[i - 1].contains(t),
        }
    }

    /// The next instant strictly after `t` at which activity flips
    /// (a window starts or ends), or `None` when no more transitions.
    pub fn next_transition_after(&self, t: SimTime) -> Option<SimTime> {
        let i = self.windows.partition_point(|w| w.start <= t);
        if i > 0 && self.windows[i - 1].end > t {
            return Some(self.windows[i - 1].end);
        }
        self.windows.get(i).map(|w| w.start)
    }

    /// Total faulted time. Saturates at the maximum representable
    /// duration (windows are disjoint, so the sum is bounded by the last
    /// window's end and cannot wrap for any real schedule).
    pub fn total_active(&self) -> SimDuration {
        self.windows
            .iter()
            .fold(SimDuration::ZERO, |acc, w| acc.saturating_add(w.duration()))
    }
}

/// Deterministic per-instant noise helper: a pure hash of `(seed, tick)`
/// mapped to `[-1, 1)`. Sensors use this instead of drawing from a stream
/// so that a read-only probe (which cannot hold `&mut SimRng`) still
/// produces reproducible noise that does not depend on how often it is
/// read.
pub fn hash_noise(seed: u64, tick: u64) -> f64 {
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let h = splitmix64(seed ^ splitmix64(tick));
    ((h >> 11) as f64) * (1.0 / (1u64 << 52) as f64) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TICKS_PER_SEC;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn schedule_merges_and_sorts() {
        let s = FaultSchedule::new(vec![
            FaultWindow {
                start: secs(10),
                end: secs(20),
            },
            FaultWindow {
                start: secs(5),
                end: secs(12),
            },
            FaultWindow {
                start: secs(30),
                end: secs(30),
            },
        ]);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.windows()[0].start, secs(5));
        assert_eq!(s.windows()[0].end, secs(20));
    }

    #[test]
    fn active_at_and_transitions() {
        let s = FaultSchedule::new(vec![
            FaultWindow {
                start: secs(10),
                end: secs(20),
            },
            FaultWindow {
                start: secs(40),
                end: secs(50),
            },
        ]);
        assert!(!s.active_at(secs(5)));
        assert!(s.active_at(secs(10)));
        assert!(s.active_at(secs(19)));
        assert!(!s.active_at(secs(20)));
        assert_eq!(s.next_transition_after(SimTime::ZERO), Some(secs(10)));
        assert_eq!(s.next_transition_after(secs(10)), Some(secs(20)));
        assert_eq!(s.next_transition_after(secs(25)), Some(secs(40)));
        assert_eq!(s.next_transition_after(secs(50)), None);
        assert_eq!(s.total_active(), SimDuration::from_secs(20));
    }

    #[test]
    fn empty_schedule_is_quiet() {
        let s = FaultSchedule::empty();
        assert!(!s.active_at(secs(0)));
        assert_eq!(s.next_transition_after(secs(0)), None);
        assert!(s.is_empty());
    }

    #[test]
    fn compiled_plans_are_deterministic() {
        let plan = FaultPlan::new(SimDuration::from_secs(60), SimDuration::from_secs(10));
        let a = plan.schedule(&mut SimRng::new(7).fork("link"), secs(3600));
        let b = plan.schedule(&mut SimRng::new(7).fork("link"), secs(3600));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "an hour at 60 s mean gap yields faults");
        for w in a.windows() {
            assert!(w.end <= secs(3600));
        }
    }

    #[test]
    fn different_streams_differ() {
        let plan = FaultPlan::new(SimDuration::from_secs(60), SimDuration::from_secs(10));
        let a = plan.schedule(&mut SimRng::new(7).fork("link"), secs(3600));
        let b = plan.schedule(&mut SimRng::new(8).fork("link"), secs(3600));
        assert_ne!(a, b);
    }

    #[test]
    fn plan_duty_cycle_is_roughly_right() {
        // 30 s faults every 300 s quiet → ~9% of time faulted.
        let plan = FaultPlan::new(SimDuration::from_secs(300), SimDuration::from_secs(30));
        let horizon = secs(400_000);
        let s = plan.schedule(&mut SimRng::new(3), horizon);
        let frac = s.total_active().as_secs_f64() / horizon.as_secs_f64();
        assert!((0.05..0.14).contains(&frac), "faulted fraction {frac}");
    }

    #[test]
    fn hash_noise_is_bounded_and_deterministic() {
        for tick in 0..1000 {
            let v = hash_noise(42, tick);
            assert!((-1.0..1.0).contains(&v), "{v}");
            assert_eq!(v, hash_noise(42, tick));
        }
        assert_ne!(hash_noise(42, 1), hash_noise(43, 1));
    }

    /// A 60-day soak horizon compiles without wrapping and every window
    /// stays inside it — the ≥30-day audit target.
    #[test]
    fn two_month_horizon_compiles_cleanly() {
        let plan = FaultPlan::new(SimDuration::from_secs(3600), SimDuration::from_secs(120));
        let horizon = secs(60 * 24 * 3600);
        let s = plan.schedule(&mut SimRng::new(11), horizon);
        assert!(!s.is_empty());
        for w in s.windows() {
            assert!(w.start < w.end && w.end <= horizon);
        }
        assert!(s.total_active() < horizon.since(SimTime::ZERO));
    }

    /// Even a horizon at the very end of representable time clamps
    /// instead of wrapping.
    #[test]
    fn compilation_saturates_at_end_of_time() {
        let plan = FaultPlan::new(
            SimDuration::from_secs(u64::MAX / TICKS_PER_SEC / 4),
            SimDuration::from_secs(u64::MAX / TICKS_PER_SEC / 4),
        );
        let horizon = SimTime::from_micros(u64::MAX);
        let s = plan.schedule(&mut SimRng::new(5), horizon);
        for w in s.windows() {
            assert!(w.end <= horizon);
        }
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_window_rejected() {
        let _ = FaultSchedule::new(vec![FaultWindow {
            start: secs(2),
            end: secs(1),
        }]);
    }
}
