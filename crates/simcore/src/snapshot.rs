//! Checkpoint/resume support: state digests, the run journal, and the
//! versioned binary snapshot format.
//!
//! A deterministic simulation needs no serialized core dump to resume: a
//! run is a pure function of its configuration, so a checkpoint is just a
//! *proof point* — (simulated time, digest of live state). Resuming means
//! replaying the same configuration up to the checkpoint time, asserting
//! that the digest matches (catching any nondeterminism or drifted code),
//! and then continuing. The [`RunJournal`] records those proof points
//! every N simulated seconds; the [`Snapshot`] trait folds a component's
//! live state into a [`SnapshotHasher`].
//!
//! The digest is a 64-bit FNV-1a/splitmix chain over the raw bits of the
//! state (floats via `to_bits`), so two states digest equal iff they are
//! bit-identical — the property the crash-halfway/resume test relies on.
//!
//! Replay-from-zero is O(history); a fleet of long-lived sessions needs
//! O(state) restore. [`SnapshotWriter`] / [`SnapshotReader`] provide the
//! dependency-free binary encoding for that: little-endian scalars behind
//! an envelope of magic, version, payload length, and a trailing
//! [`SnapshotHasher`] checksum over the payload. Decoding never panics —
//! every read is bounds-checked and every malformed input surfaces as a
//! [`SnapshotError`], so a corrupted or truncated snapshot degrades to
//! the replay path instead of taking the service down.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// First eight bytes of every sealed snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ODYSNAP1";

/// Format version written into (and demanded from) the envelope.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot failed to decode (or a component refused to encode).
///
/// Every variant is a recoverable condition: the caller falls back to
/// replay-based resume. Nothing in the decode path panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the declared content did.
    Truncated,
    /// The envelope does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The envelope was written by a different format version.
    VersionMismatch {
        /// The version found in the envelope header.
        found: u32,
    },
    /// The payload checksum does not match the trailing digest.
    ChecksumMismatch,
    /// The payload decoded structurally but a value is out of range.
    Corrupt(&'static str),
    /// The component cannot be frozen/thawed in its current shape.
    Unsupported(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::VersionMismatch { found } => {
                write!(
                    f,
                    "snapshot version mismatch: found {found}, expected {SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only encoder for the snapshot payload.
///
/// All scalars are little-endian; floats are written by exact bit
/// pattern so freeze→thaw round-trips are bit-identical. [`Self::seal`]
/// wraps the payload in the magic/version/length/checksum envelope.
#[derive(Clone, Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends a word.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a 32-bit word.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a float by its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one word (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u64(v as u64);
    }

    /// Appends a usize widened to a word.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a [`SimTime`] as its microsecond count.
    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_micros());
    }

    /// Appends a [`SimDuration`] as its microsecond count.
    pub fn put_duration(&mut self, d: SimDuration) {
        self.put_u64(d.as_micros());
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends `Some(v)`/`None` as a presence word plus the payload.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u64(0),
            Some(v) => {
                self.put_u64(1);
                self.put_u64(v);
            }
        }
    }

    /// Appends an optional float (presence word plus bit pattern).
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.put_u64(0),
            Some(v) => {
                self.put_u64(1);
                self.put_f64(v);
            }
        }
    }

    /// Appends an optional [`SimTime`].
    pub fn put_opt_time(&mut self, t: Option<SimTime>) {
        self.put_opt_u64(t.map(|t| t.as_micros()));
    }

    /// Payload bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Wraps the payload in the envelope: magic, version, payload
    /// length, payload, then a trailing [`SnapshotHasher`] digest of the
    /// payload.
    pub fn seal(self) -> Vec<u8> {
        let mut h = SnapshotHasher::new();
        h.write_bytes(&self.buf);
        let checksum = h.finish();
        let mut out = Vec::with_capacity(self.buf.len() + 28);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Bounds-checked decoder over a verified snapshot payload.
///
/// Constructed by [`SnapshotReader::open`], which validates the whole
/// envelope (magic, version, length, checksum) up front; the take
/// methods then only need to guard against structural truncation. No
/// method indexes unchecked or panics on hostile input — simlint rule S1
/// audits this file for exactly that.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
    /// `&'static str` fields (bucket names, workload names) are restored
    /// by leaking — deduplicated per reader so each distinct string
    /// leaks at most once per thaw.
    interned: BTreeMap<String, &'static str>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the envelope of `bytes` and returns a reader over the
    /// payload.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let magic = bytes.get(..8).ok_or(SnapshotError::Truncated)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version_bytes = bytes.get(8..12).ok_or(SnapshotError::Truncated)?;
        let mut v = [0u8; 4];
        v.copy_from_slice(version_bytes);
        let version = u32::from_le_bytes(v);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        let len_bytes = bytes.get(12..20).ok_or(SnapshotError::Truncated)?;
        let mut l = [0u8; 8];
        l.copy_from_slice(len_bytes);
        let payload_len = u64::from_le_bytes(l) as usize;
        let payload_end = 20usize
            .checked_add(payload_len)
            .ok_or(SnapshotError::Truncated)?;
        let payload = bytes.get(20..payload_end).ok_or(SnapshotError::Truncated)?;
        let checksum_bytes = bytes
            .get(payload_end..payload_end + 8)
            .ok_or(SnapshotError::Truncated)?;
        let mut c = [0u8; 8];
        c.copy_from_slice(checksum_bytes);
        let mut h = SnapshotHasher::new();
        h.write_bytes(payload);
        if h.finish() != u64::from_le_bytes(c) {
            return Err(SnapshotError::ChecksumMismatch);
        }
        if bytes.len() > payload_end + 8 {
            return Err(SnapshotError::Corrupt("trailing bytes after envelope"));
        }
        Ok(SnapshotReader {
            payload,
            pos: 0,
            interned: BTreeMap::new(),
        })
    }

    /// Reads a word.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let bytes = self
            .payload
            .get(self.pos..self.pos + 8)
            .ok_or(SnapshotError::Truncated)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(bytes);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a 32-bit word.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let bytes = self
            .payload
            .get(self.pos..self.pos + 4)
            .ok_or(SnapshotError::Truncated)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(bytes);
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a float by bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool; any word other than 0/1 is corruption.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool out of range")),
        }
    }

    /// Reads a usize, rejecting words beyond the platform's range.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Reads a [`SimTime`].
    pub fn take_time(&mut self) -> Result<SimTime, SnapshotError> {
        Ok(SimTime::from_micros(self.take_u64()?))
    }

    /// Reads a [`SimDuration`].
    pub fn take_duration(&mut self) -> Result<SimDuration, SnapshotError> {
        Ok(SimDuration::from_micros(self.take_u64()?))
    }

    /// Reads length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.take_usize()?;
        let end = self.pos.checked_add(len).ok_or(SnapshotError::Truncated)?;
        let bytes = self
            .payload
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_string(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("invalid utf-8"))
    }

    /// Reads a string destined for a `&'static str` field, leaking it.
    ///
    /// Deduplicated per reader, so thawing a session leaks each distinct
    /// name once — bucket and workload names are a handful of short
    /// strings, a bounded cost per restore.
    pub fn take_static_str(&mut self) -> Result<&'static str, SnapshotError> {
        let s = self.take_string()?;
        if let Some(&interned) = self.interned.get(&s) {
            return Ok(interned);
        }
        let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
        self.interned.insert(s, leaked);
        Ok(leaked)
    }

    /// Reads an optional word (presence word plus payload).
    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional float.
    pub fn take_opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        if self.take_bool()? {
            Ok(Some(self.take_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional [`SimTime`].
    pub fn take_opt_time(&mut self) -> Result<Option<SimTime>, SnapshotError> {
        Ok(self.take_opt_u64()?.map(SimTime::from_micros))
    }

    /// Unread payload bytes.
    pub fn remaining(&self) -> usize {
        self.payload.len().saturating_sub(self.pos)
    }

    /// Asserts the payload was fully consumed — leftover bytes mean the
    /// encoder and decoder disagree about the schema.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("payload not fully consumed"))
        }
    }
}

/// Incremental 64-bit state digest.
///
/// FNV-1a over bytes with a splitmix64 finalizer per word; not
/// cryptographic, but sensitive to every bit fed in, which is all a
/// determinism check needs.
#[derive(Clone, Debug)]
pub struct SnapshotHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SnapshotHasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        SnapshotHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self.state = splitmix(self.state);
    }

    /// Folds a word into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a float into the digest by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        splitmix(self.state)
    }
}

impl Default for SnapshotHasher {
    fn default() -> Self {
        SnapshotHasher::new()
    }
}

/// State that can be folded into a checkpoint digest.
///
/// Implementations must visit every field that influences future
/// behavior, in a fixed order; two components snapshot equal iff their
/// observable future evolution is identical.
pub trait Snapshot {
    /// Folds this component's live state into the hasher.
    fn snapshot(&self, h: &mut SnapshotHasher);
}

impl Snapshot for u64 {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self);
    }
}

impl Snapshot for u32 {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self as u64);
    }
}

impl Snapshot for usize {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self as u64);
    }
}

impl Snapshot for bool {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self as u64);
    }
}

impl Snapshot for f64 {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_f64(*self);
    }
}

impl Snapshot for SimTime {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.as_micros());
    }
}

impl Snapshot for SimDuration {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.as_micros());
    }
}

impl Snapshot for str {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.len() as u64);
        h.write_bytes(self.as_bytes());
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.snapshot(h);
            }
        }
    }
}

impl<T: Snapshot> Snapshot for [T] {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.snapshot(h);
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        self.as_slice().snapshot(h);
    }
}

/// One recorded proof point of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Sequence number, starting at 0.
    pub seq: u64,
    /// Simulated instant the digest was taken.
    pub t: SimTime,
    /// Digest of the full live state at `t`.
    pub digest: u64,
}

/// Journal of checkpoints taken every N simulated seconds.
///
/// The journal itself never mutates simulation state; recording a
/// checkpoint observes the digest a hook computed and remembers when the
/// next one is due.
#[derive(Clone, Debug)]
pub struct RunJournal {
    interval: SimDuration,
    next_due: SimTime,
    checkpoints: Vec<Checkpoint>,
}

impl RunJournal {
    /// Creates a journal checkpointing every `interval`.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "checkpoint interval must be positive");
        RunJournal {
            interval,
            next_due: SimTime::ZERO + interval,
            checkpoints: Vec::new(),
        }
    }

    /// The checkpoint interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// True if a checkpoint is due at or before `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Records a checkpoint at `now` if one is due; returns true if
    /// recorded. `digest` is only invoked when due.
    pub fn record_if_due(&mut self, now: SimTime, digest: impl FnOnce() -> u64) -> bool {
        if !self.is_due(now) {
            return false;
        }
        self.checkpoints.push(Checkpoint {
            seq: self.checkpoints.len() as u64,
            t: now,
            digest: digest(),
        });
        // Schedule strictly after `now` so a stalled clock cannot record
        // twice at one instant.
        while self.next_due <= now {
            self.next_due += self.interval;
        }
        true
    }

    /// All recorded checkpoints, in time order.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// The most recent checkpoint at or before `t` — the resume point
    /// after a crash at `t`.
    pub fn latest_at_or_before(&self, t: SimTime) -> Option<&Checkpoint> {
        self.checkpoints.iter().rev().find(|c| c.t <= t)
    }

    /// True if `digest` matches the checkpoint recorded at exactly `t`.
    /// Used on resume to prove the replay reproduced the journaled state.
    pub fn verify(&self, t: SimTime, digest: u64) -> bool {
        self.checkpoints
            .iter()
            .any(|c| c.t == t && c.digest == digest)
    }

    /// Encodes the journal (interval, schedule position, every proof
    /// point) into a snapshot payload.
    pub fn freeze_into(&self, w: &mut SnapshotWriter) {
        w.put_duration(self.interval);
        w.put_time(self.next_due);
        w.put_usize(self.checkpoints.len());
        for c in &self.checkpoints {
            w.put_u64(c.seq);
            w.put_time(c.t);
            w.put_u64(c.digest);
        }
    }

    /// Decodes a journal previously written by [`Self::freeze_into`].
    pub fn thaw_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let interval = r.take_duration()?;
        if interval.is_zero() {
            return Err(SnapshotError::Corrupt("zero checkpoint interval"));
        }
        let next_due = r.take_time()?;
        let n = r.take_usize()?;
        let mut checkpoints = Vec::with_capacity(n.min(1024));
        for i in 0..n {
            let seq = r.take_u64()?;
            if seq != i as u64 {
                return Err(SnapshotError::Corrupt("checkpoint seq not dense"));
            }
            let t = r.take_time()?;
            if checkpoints.last().is_some_and(|p: &Checkpoint| p.t > t) {
                return Err(SnapshotError::Corrupt("checkpoints out of order"));
            }
            let digest = r.take_u64()?;
            checkpoints.push(Checkpoint { seq, t, digest });
        }
        Ok(RunJournal {
            interval,
            next_due,
            checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_bit_sensitive() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        a.write_f64(1.0);
        b.write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn identical_streams_digest_equal() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        for h in [&mut a, &mut b] {
            h.write_u64(42);
            h.write_f64(-0.5);
            "speech".snapshot(h);
            Some(7u64).snapshot(h);
            vec![1u64, 2, 3].snapshot(h);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn option_none_differs_from_some_zero() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        Option::<u64>::None.snapshot(&mut a);
        Some(0u64).snapshot(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn journal_records_on_interval() {
        let mut j = RunJournal::new(SimDuration::from_secs(10));
        assert!(!j.record_if_due(SimTime::from_secs(5), || 1));
        assert!(j.record_if_due(SimTime::from_secs(10), || 2));
        assert!(!j.record_if_due(SimTime::from_secs(10), || 3));
        assert!(j.record_if_due(SimTime::from_secs(25), || 4));
        let cs = j.checkpoints();
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0],
            Checkpoint {
                seq: 0,
                t: SimTime::from_secs(10),
                digest: 2
            }
        );
        assert_eq!(
            cs[1],
            Checkpoint {
                seq: 1,
                t: SimTime::from_secs(25),
                digest: 4
            }
        );
    }

    #[test]
    fn resume_point_lookup() {
        let mut j = RunJournal::new(SimDuration::from_secs(10));
        j.record_if_due(SimTime::from_secs(10), || 10);
        j.record_if_due(SimTime::from_secs(20), || 20);
        j.record_if_due(SimTime::from_secs(30), || 30);
        let ck = j.latest_at_or_before(SimTime::from_secs(25)).unwrap();
        assert_eq!(ck.t, SimTime::from_secs(20));
        assert_eq!(ck.digest, 20);
        assert!(j.latest_at_or_before(SimTime::from_secs(5)).is_none());
        assert_eq!(j.latest().unwrap().t, SimTime::from_secs(30));
        assert!(j.verify(SimTime::from_secs(20), 20));
        assert!(!j.verify(SimTime::from_secs(20), 21));
        assert!(!j.verify(SimTime::from_secs(15), 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = RunJournal::new(SimDuration::ZERO);
    }

    fn sample_payload() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u64(7);
        w.put_f64(-0.5);
        w.put_bool(true);
        w.put_str("speech");
        w.put_opt_u64(Some(3));
        w.put_opt_time(None);
        w.seal()
    }

    #[test]
    fn writer_reader_round_trip() {
        let bytes = sample_payload();
        let mut r = SnapshotReader::open(&bytes).expect("open");
        assert_eq!(r.take_u64().unwrap(), 7);
        assert_eq!(r.take_f64().unwrap(), -0.5);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_string().unwrap(), "speech");
        assert_eq!(r.take_opt_u64().unwrap(), Some(3));
        assert_eq!(r.take_opt_time().unwrap(), None);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn static_str_interning_dedups() {
        let mut w = SnapshotWriter::new();
        w.put_str("disk");
        w.put_str("disk");
        let bytes = w.seal();
        let mut r = SnapshotReader::open(&bytes).expect("open");
        let a = r.take_static_str().unwrap();
        let b = r.take_static_str().unwrap();
        assert_eq!(a, "disk");
        assert!(std::ptr::eq(a, b), "same string must intern to one leak");
    }

    #[test]
    fn truncation_at_every_length_is_detected_without_panic() {
        let bytes = sample_payload();
        for cut in 0..bytes.len() {
            let err =
                SnapshotReader::open(&bytes[..cut]).expect_err("truncated snapshot must not open");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_payload();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                let outcome = SnapshotReader::open(&evil);
                assert!(
                    outcome.is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_reports_found_version() {
        let mut bytes = sample_payload();
        bytes[8] = 99;
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(SnapshotError::VersionMismatch { found: 99 })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_payload();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = sample_payload();
        bytes.push(0);
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn unconsumed_payload_is_an_error() {
        let bytes = sample_payload();
        let r = SnapshotReader::open(&bytes).expect("open");
        assert!(matches!(r.finish(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn bool_out_of_range_is_corrupt() {
        let mut w = SnapshotWriter::new();
        w.put_u64(2);
        let bytes = w.seal();
        let mut r = SnapshotReader::open(&bytes).expect("open");
        assert!(matches!(r.take_bool(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn journal_round_trips_through_snapshot() {
        let mut j = RunJournal::new(SimDuration::from_secs(10));
        j.record_if_due(SimTime::from_secs(10), || 10);
        j.record_if_due(SimTime::from_secs(25), || 25);
        let mut w = SnapshotWriter::new();
        j.freeze_into(&mut w);
        let bytes = w.seal();
        let mut r = SnapshotReader::open(&bytes).expect("open");
        let back = RunJournal::thaw_from(&mut r).expect("thaw");
        r.finish().expect("fully consumed");
        assert_eq!(back.interval(), j.interval());
        assert_eq!(back.checkpoints(), j.checkpoints());
        // The thawed journal continues the schedule, not restarts it.
        let mut live = back.clone();
        assert!(!live.record_if_due(SimTime::from_secs(29), || 0));
        assert!(live.record_if_due(SimTime::from_secs(30), || 30));
    }
}
