//! Checkpoint/resume support: state digests and the run journal.
//!
//! A deterministic simulation needs no serialized core dump to resume: a
//! run is a pure function of its configuration, so a checkpoint is just a
//! *proof point* — (simulated time, digest of live state). Resuming means
//! replaying the same configuration up to the checkpoint time, asserting
//! that the digest matches (catching any nondeterminism or drifted code),
//! and then continuing. The [`RunJournal`] records those proof points
//! every N simulated seconds; the [`Snapshot`] trait folds a component's
//! live state into a [`SnapshotHasher`].
//!
//! The digest is a 64-bit FNV-1a/splitmix chain over the raw bits of the
//! state (floats via `to_bits`), so two states digest equal iff they are
//! bit-identical — the property the crash-halfway/resume test relies on.

use crate::time::{SimDuration, SimTime};

/// Incremental 64-bit state digest.
///
/// FNV-1a over bytes with a splitmix64 finalizer per word; not
/// cryptographic, but sensitive to every bit fed in, which is all a
/// determinism check needs.
#[derive(Clone, Debug)]
pub struct SnapshotHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SnapshotHasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        SnapshotHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self.state = splitmix(self.state);
    }

    /// Folds a word into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a float into the digest by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        splitmix(self.state)
    }
}

impl Default for SnapshotHasher {
    fn default() -> Self {
        SnapshotHasher::new()
    }
}

/// State that can be folded into a checkpoint digest.
///
/// Implementations must visit every field that influences future
/// behavior, in a fixed order; two components snapshot equal iff their
/// observable future evolution is identical.
pub trait Snapshot {
    /// Folds this component's live state into the hasher.
    fn snapshot(&self, h: &mut SnapshotHasher);
}

impl Snapshot for u64 {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self);
    }
}

impl Snapshot for u32 {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self as u64);
    }
}

impl Snapshot for usize {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self as u64);
    }
}

impl Snapshot for bool {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(*self as u64);
    }
}

impl Snapshot for f64 {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_f64(*self);
    }
}

impl Snapshot for SimTime {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.as_micros());
    }
}

impl Snapshot for SimDuration {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.as_micros());
    }
}

impl Snapshot for str {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.len() as u64);
        h.write_bytes(self.as_bytes());
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        match self {
            None => h.write_u64(0),
            Some(v) => {
                h.write_u64(1);
                v.snapshot(h);
            }
        }
    }
}

impl<T: Snapshot> Snapshot for [T] {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.snapshot(h);
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snapshot(&self, h: &mut SnapshotHasher) {
        self.as_slice().snapshot(h);
    }
}

/// One recorded proof point of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Sequence number, starting at 0.
    pub seq: u64,
    /// Simulated instant the digest was taken.
    pub t: SimTime,
    /// Digest of the full live state at `t`.
    pub digest: u64,
}

/// Journal of checkpoints taken every N simulated seconds.
///
/// The journal itself never mutates simulation state; recording a
/// checkpoint observes the digest a hook computed and remembers when the
/// next one is due.
#[derive(Clone, Debug)]
pub struct RunJournal {
    interval: SimDuration,
    next_due: SimTime,
    checkpoints: Vec<Checkpoint>,
}

impl RunJournal {
    /// Creates a journal checkpointing every `interval`.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "checkpoint interval must be positive");
        RunJournal {
            interval,
            next_due: SimTime::ZERO + interval,
            checkpoints: Vec::new(),
        }
    }

    /// The checkpoint interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// True if a checkpoint is due at or before `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Records a checkpoint at `now` if one is due; returns true if
    /// recorded. `digest` is only invoked when due.
    pub fn record_if_due(&mut self, now: SimTime, digest: impl FnOnce() -> u64) -> bool {
        if !self.is_due(now) {
            return false;
        }
        self.checkpoints.push(Checkpoint {
            seq: self.checkpoints.len() as u64,
            t: now,
            digest: digest(),
        });
        // Schedule strictly after `now` so a stalled clock cannot record
        // twice at one instant.
        while self.next_due <= now {
            self.next_due += self.interval;
        }
        true
    }

    /// All recorded checkpoints, in time order.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.checkpoints.last()
    }

    /// The most recent checkpoint at or before `t` — the resume point
    /// after a crash at `t`.
    pub fn latest_at_or_before(&self, t: SimTime) -> Option<&Checkpoint> {
        self.checkpoints.iter().rev().find(|c| c.t <= t)
    }

    /// True if `digest` matches the checkpoint recorded at exactly `t`.
    /// Used on resume to prove the replay reproduced the journaled state.
    pub fn verify(&self, t: SimTime, digest: u64) -> bool {
        self.checkpoints
            .iter()
            .any(|c| c.t == t && c.digest == digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_bit_sensitive() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        a.write_f64(1.0);
        b.write_f64(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn identical_streams_digest_equal() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        for h in [&mut a, &mut b] {
            h.write_u64(42);
            h.write_f64(-0.5);
            "speech".snapshot(h);
            Some(7u64).snapshot(h);
            vec![1u64, 2, 3].snapshot(h);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn option_none_differs_from_some_zero() {
        let mut a = SnapshotHasher::new();
        let mut b = SnapshotHasher::new();
        Option::<u64>::None.snapshot(&mut a);
        Some(0u64).snapshot(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn journal_records_on_interval() {
        let mut j = RunJournal::new(SimDuration::from_secs(10));
        assert!(!j.record_if_due(SimTime::from_secs(5), || 1));
        assert!(j.record_if_due(SimTime::from_secs(10), || 2));
        assert!(!j.record_if_due(SimTime::from_secs(10), || 3));
        assert!(j.record_if_due(SimTime::from_secs(25), || 4));
        let cs = j.checkpoints();
        assert_eq!(cs.len(), 2);
        assert_eq!(
            cs[0],
            Checkpoint {
                seq: 0,
                t: SimTime::from_secs(10),
                digest: 2
            }
        );
        assert_eq!(
            cs[1],
            Checkpoint {
                seq: 1,
                t: SimTime::from_secs(25),
                digest: 4
            }
        );
    }

    #[test]
    fn resume_point_lookup() {
        let mut j = RunJournal::new(SimDuration::from_secs(10));
        j.record_if_due(SimTime::from_secs(10), || 10);
        j.record_if_due(SimTime::from_secs(20), || 20);
        j.record_if_due(SimTime::from_secs(30), || 30);
        let ck = j.latest_at_or_before(SimTime::from_secs(25)).unwrap();
        assert_eq!(ck.t, SimTime::from_secs(20));
        assert_eq!(ck.digest, 20);
        assert!(j.latest_at_or_before(SimTime::from_secs(5)).is_none());
        assert_eq!(j.latest().unwrap().t, SimTime::from_secs(30));
        assert!(j.verify(SimTime::from_secs(20), 20));
        assert!(!j.verify(SimTime::from_secs(20), 21));
        assert!(!j.verify(SimTime::from_secs(15), 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = RunJournal::new(SimDuration::ZERO);
    }
}
