//! simtrace: deterministic structured-event tracing.
//!
//! Every load-bearing transition in the simulator — a scheduler dispatch,
//! an energy-ledger delta, an RPC retry, a fidelity upcall, a supervisor
//! escalation — can be emitted as a typed [`TraceEvent`] into a
//! [`TraceSink`]. Records are keyed by sim-time plus a monotone sequence
//! number, so a trace is a total order over everything that happened in a
//! run, and two runs at the same seed produce byte-identical JSONL.
//!
//! Determinism rules (DESIGN.md §11) apply in full: the sink never reads
//! the wall clock, never allocates unordered collections, and renders
//! floats with Rust's shortest-roundtrip `Display` so the text form is a
//! pure function of the simulated state.
//!
//! The sink is shared through a cloneable [`TraceHandle`]
//! (`Rc<RefCell<_>>`, same shape as the goal controller's handle): the
//! machine holds one clone, control-plane hooks reach it through
//! `MachineView`, and the test harness keeps another clone to read the
//! trace back after the run.
//!
//! # Examples
//!
//! ```
//! use simcore::{SimTime, TraceCategory, TraceEvent, TraceHandle, TraceSink};
//!
//! let trace = TraceHandle::new(TraceSink::new().with_jsonl());
//! trace.emit(
//!     SimTime::from_secs(2),
//!     TraceEvent::FidelityChange {
//!         pid: 0,
//!         name: "xanim",
//!         direction: "down",
//!         level: 1,
//!     },
//! );
//! assert!(trace.enabled(TraceCategory::Control));
//! let lines = trace.jsonl();
//! assert_eq!(
//!     lines[0],
//!     "{\"time_s\":2,\"seq\":0,\"ev\":\"fidelity_change\",\"pid\":0,\
//!      \"name\":\"xanim\",\"dir\":\"down\",\"level\":1}"
//! );
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::time::SimTime;

/// Default ring-buffer capacity (records), chosen so a full goal-directed
/// run with every category enabled still fits.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Event families, used to filter what a sink records.
///
/// High-frequency families (`Sched`, `Energy`, `Flow`, `Meter`) are what
/// property tests enable in memory; the golden checked-in traces keep to
/// the control-plane families so the files stay small and reviewable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Scheduler dispatch (one event per CPU slice — high frequency).
    Sched,
    /// Per-interval energy-ledger deltas (high frequency).
    Energy,
    /// Shared-link flow admission/completion (high frequency).
    Flow,
    /// RPC timeouts and retries.
    Net,
    /// Fault activations: link capacity transitions, meter faults.
    Fault,
    /// Fidelity changes, warden upcalls, goal clamps, exhaustion.
    Control,
    /// Goal-controller supply/demand decision samples.
    Budget,
    /// Supervisor strikes, escalations, suspend/restart/clamp.
    Supervisor,
    /// PowerScope sampling (high frequency).
    Meter,
    /// Service layer: live reconfiguration verdicts and dead letters.
    Service,
}

impl TraceCategory {
    /// Every category, in declaration order.
    pub const ALL: [TraceCategory; 10] = [
        TraceCategory::Sched,
        TraceCategory::Energy,
        TraceCategory::Flow,
        TraceCategory::Net,
        TraceCategory::Fault,
        TraceCategory::Control,
        TraceCategory::Budget,
        TraceCategory::Supervisor,
        TraceCategory::Meter,
        TraceCategory::Service,
    ];

    /// The low-frequency control-plane families — what golden traces use.
    pub const CONTROL_PLANE: [TraceCategory; 6] = [
        TraceCategory::Net,
        TraceCategory::Fault,
        TraceCategory::Control,
        TraceCategory::Budget,
        TraceCategory::Supervisor,
        TraceCategory::Service,
    ];

    fn bit(self) -> u32 {
        1 << (self as u32)
    }
}

/// One typed trace event. All payload strings are `&'static str` (bucket
/// and workload names are interned), so events are `Copy` and emission
/// never allocates unless the JSONL writer is on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// The scheduler gave the CPU to a process.
    SchedDispatch {
        /// Process id (machine index).
        pid: u64,
        /// Procedure charged for the slice.
        procedure: &'static str,
    },
    /// The ledger charged a share of one interval's energy to a bucket.
    EnergyDelta {
        /// Software bucket (process or overlay) the energy went to.
        bucket: &'static str,
        /// Energy charged, J (always ≥ 0).
        energy_j: f64,
    },
    /// A bulk transfer entered the shared link.
    FlowStart {
        /// Link-assigned flow id.
        flow: u64,
        /// Transfer size, bytes.
        bytes: u64,
    },
    /// A flow's last byte left the link.
    FlowDone {
        /// Link-assigned flow id.
        flow: u64,
    },
    /// The shared link's capacity factor changed (fault or recovery).
    LinkRate {
        /// New capacity factor in [0, 1]; 0 is an outage.
        factor: f64,
        /// Flows active at the transition.
        active: u64,
    },
    /// An RPC attempt hit the retry policy's timeout.
    RpcTimeout {
        /// Process id.
        pid: u64,
        /// Workload name.
        name: &'static str,
        /// Attempt number that timed out (1-based).
        attempt: u64,
    },
    /// A timed-out RPC was re-issued after backoff.
    RpcRetry {
        /// Process id.
        pid: u64,
        /// Workload name.
        name: &'static str,
        /// Attempt number being issued (1-based).
        attempt: u64,
    },
    /// A workload's fidelity level changed (any upcall source).
    FidelityChange {
        /// Process id.
        pid: u64,
        /// Workload name.
        name: &'static str,
        /// `"up"` or `"down"`.
        direction: &'static str,
        /// New fidelity level (0 = highest fidelity).
        level: u64,
    },
    /// A warden bandwidth-window upcall was issued.
    WardenUpcall {
        /// Process id.
        pid: u64,
        /// Window verdict that triggered it (`"below"` / `"above"`).
        event: &'static str,
        /// Whether the workload actually moved a level.
        changed: bool,
    },
    /// One goal-controller decision sample.
    GoalBudget {
        /// Estimated energy supply after reserve, J.
        supply_j: f64,
        /// Predicted demand to the deadline, J.
        demand_j: f64,
    },
    /// The hardened goal controller clamped an implausible power sample.
    GoalClamp {
        /// Raw sensor reading, W.
        raw_power_w: f64,
        /// Value after clamping, W.
        power_w: f64,
    },
    /// The goal controller found the goal infeasible at lowest fidelity.
    GoalInfeasible,
    /// A finite energy supply ran out mid-run.
    SupplyExhausted {
        /// Energy left in the supply (≈ 0), J.
        residual_j: f64,
    },
    /// A supervisor detector recorded a strike against a process.
    SupervisorStrike {
        /// Process id.
        pid: u64,
        /// Detector that fired (`"hang"` / `"ignore"` / `"overdraw"`).
        detector: &'static str,
        /// Strike count after this one.
        strikes: u64,
    },
    /// The supervisor escalated its response ladder.
    SupervisorEscalate {
        /// Process id.
        pid: u64,
        /// Rung taken (`"reissue"`, `"clamp"`, `"quarantine"`,
        /// `"restart"`, `"retire"`, `"crash_collect"`).
        rung: &'static str,
    },
    /// A datapath clamp factor was applied to a process.
    DatapathClamp {
        /// Process id.
        pid: u64,
        /// Multiplier on the process's datapath rate, in (0, 1].
        factor: f64,
    },
    /// A process was suspended.
    Suspend {
        /// Process id.
        pid: u64,
        /// Workload name.
        name: &'static str,
    },
    /// A suspended process was restarted.
    Restart {
        /// Process id.
        pid: u64,
        /// Workload name.
        name: &'static str,
    },
    /// The powerscope multimeter captured one sample.
    MeterSample {
        /// Platform current read by the meter, A.
        current_a: f64,
        /// Process the sample was attributed to.
        process: &'static str,
    },
    /// A meter fault swallowed or distorted a power observation.
    MeterFault {
        /// Fault kind (`"dropout"`, `"stuck"`, …).
        kind: &'static str,
    },
    /// The service layer accepted and applied a reconfiguration command.
    ReconfigApplied {
        /// Command kind (`"goal"`, `"budget"`, `"horizon"`,
        /// `"quarantine"`, `"readmit"`).
        kind: &'static str,
        /// Command argument: seconds for goal/horizon, joules for budget,
        /// the process index for quarantine/readmit.
        value: f64,
    },
    /// The service layer rejected a reconfiguration command.
    ReconfigRejected {
        /// Command kind (`"goal"`, `"budget"`, `"horizon"`,
        /// `"quarantine"`, `"readmit"`).
        kind: &'static str,
        /// Validation failure (`"already_missed"`, `"below_elapsed"`,
        /// `"non_positive"`, `"not_finite"`, `"already_quarantined"`,
        /// `"not_quarantined"`, `"unknown_pid"`, `"stale"`).
        reason: &'static str,
    },
    /// A malformed or out-of-order input sample was dead-lettered.
    DeadLetter {
        /// Why the sample was rejected (`"out_of_order"`, `"not_finite"`,
        /// `"after_stop"`, …).
        reason: &'static str,
        /// Dead letters recorded so far, including this one.
        count: u64,
    },
}

impl TraceEvent {
    /// The family this event belongs to.
    pub fn category(&self) -> TraceCategory {
        match self {
            TraceEvent::SchedDispatch { .. } => TraceCategory::Sched,
            TraceEvent::EnergyDelta { .. } => TraceCategory::Energy,
            TraceEvent::FlowStart { .. } | TraceEvent::FlowDone { .. } => TraceCategory::Flow,
            TraceEvent::LinkRate { .. } | TraceEvent::MeterFault { .. } => TraceCategory::Fault,
            TraceEvent::RpcTimeout { .. } | TraceEvent::RpcRetry { .. } => TraceCategory::Net,
            TraceEvent::FidelityChange { .. }
            | TraceEvent::WardenUpcall { .. }
            | TraceEvent::GoalClamp { .. }
            | TraceEvent::GoalInfeasible
            | TraceEvent::SupplyExhausted { .. } => TraceCategory::Control,
            TraceEvent::GoalBudget { .. } => TraceCategory::Budget,
            TraceEvent::SupervisorStrike { .. }
            | TraceEvent::SupervisorEscalate { .. }
            | TraceEvent::DatapathClamp { .. }
            | TraceEvent::Suspend { .. }
            | TraceEvent::Restart { .. } => TraceCategory::Supervisor,
            TraceEvent::MeterSample { .. } => TraceCategory::Meter,
            TraceEvent::ReconfigApplied { .. }
            | TraceEvent::ReconfigRejected { .. }
            | TraceEvent::DeadLetter { .. } => TraceCategory::Service,
        }
    }

    /// The `"ev"` tag used in the JSONL rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::SchedDispatch { .. } => "sched_dispatch",
            TraceEvent::EnergyDelta { .. } => "energy_delta",
            TraceEvent::FlowStart { .. } => "flow_start",
            TraceEvent::FlowDone { .. } => "flow_done",
            TraceEvent::LinkRate { .. } => "link_rate",
            TraceEvent::RpcTimeout { .. } => "rpc_timeout",
            TraceEvent::RpcRetry { .. } => "rpc_retry",
            TraceEvent::FidelityChange { .. } => "fidelity_change",
            TraceEvent::WardenUpcall { .. } => "warden_upcall",
            TraceEvent::GoalBudget { .. } => "goal_budget",
            TraceEvent::GoalClamp { .. } => "goal_clamp",
            TraceEvent::GoalInfeasible => "goal_infeasible",
            TraceEvent::SupplyExhausted { .. } => "supply_exhausted",
            TraceEvent::SupervisorStrike { .. } => "supervisor_strike",
            TraceEvent::SupervisorEscalate { .. } => "supervisor_escalate",
            TraceEvent::DatapathClamp { .. } => "datapath_clamp",
            TraceEvent::Suspend { .. } => "suspend",
            TraceEvent::Restart { .. } => "restart",
            TraceEvent::MeterSample { .. } => "meter_sample",
            TraceEvent::MeterFault { .. } => "meter_fault",
            TraceEvent::ReconfigApplied { .. } => "reconfig_applied",
            TraceEvent::ReconfigRejected { .. } => "reconfig_rejected",
            TraceEvent::DeadLetter { .. } => "dead_letter",
        }
    }

    fn render_payload(&self, out: &mut String) {
        match *self {
            TraceEvent::SchedDispatch { pid, procedure } => {
                field_u64(out, "pid", pid);
                field_str(out, "proc", procedure);
            }
            TraceEvent::EnergyDelta { bucket, energy_j } => {
                field_str(out, "bucket", bucket);
                field_f64(out, "energy_j", energy_j);
            }
            TraceEvent::FlowStart { flow, bytes } => {
                field_u64(out, "flow", flow);
                field_u64(out, "bytes", bytes);
            }
            TraceEvent::FlowDone { flow } => field_u64(out, "flow", flow),
            TraceEvent::LinkRate { factor, active } => {
                field_f64(out, "factor", factor);
                field_u64(out, "active", active);
            }
            TraceEvent::RpcTimeout { pid, name, attempt }
            | TraceEvent::RpcRetry { pid, name, attempt } => {
                field_u64(out, "pid", pid);
                field_str(out, "name", name);
                field_u64(out, "attempt", attempt);
            }
            TraceEvent::FidelityChange {
                pid,
                name,
                direction,
                level,
            } => {
                field_u64(out, "pid", pid);
                field_str(out, "name", name);
                field_str(out, "dir", direction);
                field_u64(out, "level", level);
            }
            TraceEvent::WardenUpcall {
                pid,
                event,
                changed,
            } => {
                field_u64(out, "pid", pid);
                field_str(out, "event", event);
                field_bool(out, "changed", changed);
            }
            TraceEvent::GoalBudget { supply_j, demand_j } => {
                field_f64(out, "supply_j", supply_j);
                field_f64(out, "demand_j", demand_j);
            }
            TraceEvent::GoalClamp {
                raw_power_w,
                power_w,
            } => {
                field_f64(out, "raw_power_w", raw_power_w);
                field_f64(out, "power_w", power_w);
            }
            TraceEvent::GoalInfeasible => {}
            TraceEvent::SupplyExhausted { residual_j } => field_f64(out, "residual_j", residual_j),
            TraceEvent::SupervisorStrike {
                pid,
                detector,
                strikes,
            } => {
                field_u64(out, "pid", pid);
                field_str(out, "detector", detector);
                field_u64(out, "strikes", strikes);
            }
            TraceEvent::SupervisorEscalate { pid, rung } => {
                field_u64(out, "pid", pid);
                field_str(out, "rung", rung);
            }
            TraceEvent::DatapathClamp { pid, factor } => {
                field_u64(out, "pid", pid);
                field_f64(out, "factor", factor);
            }
            TraceEvent::Suspend { pid, name } | TraceEvent::Restart { pid, name } => {
                field_u64(out, "pid", pid);
                field_str(out, "name", name);
            }
            TraceEvent::MeterSample { current_a, process } => {
                field_f64(out, "current_a", current_a);
                field_str(out, "process", process);
            }
            TraceEvent::MeterFault { kind } => field_str(out, "kind", kind),
            TraceEvent::ReconfigApplied { kind, value } => {
                field_str(out, "kind", kind);
                field_f64(out, "value", value);
            }
            TraceEvent::ReconfigRejected { kind, reason } => {
                field_str(out, "kind", kind);
                field_str(out, "reason", reason);
            }
            TraceEvent::DeadLetter { reason, count } => {
                field_str(out, "reason", reason);
                field_u64(out, "count", count);
            }
        }
    }
}

/// One recorded event: sim-time, monotone sequence number, payload.
///
/// `(at, seq)` is a strict total order over a sink's records: `seq` is
/// assigned at emission and never repeats, and `at` never decreases
/// because the simulation clock does not.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Simulated instant the event happened.
    pub at: SimTime,
    /// Monotone per-sink sequence number (0-based).
    pub seq: u64,
    /// The typed payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    ///
    /// Floats use Rust's shortest-roundtrip `Display`, which is
    /// deterministic and never scientific, so byte-comparing two JSONL
    /// streams is exactly comparing two runs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        field_f64(&mut out, "time_s", self.at.as_secs_f64());
        field_u64(&mut out, "seq", self.seq);
        field_str(&mut out, "ev", self.event.tag());
        self.event.render_payload(&mut out);
        out.push('}');
        out
    }
}

fn field_sep(out: &mut String) {
    if !out.ends_with('{') {
        out.push(',');
    }
}

fn field_u64(out: &mut String, key: &str, v: u64) {
    field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn field_f64(out: &mut String, key: &str, v: f64) {
    field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn field_bool(out: &mut String, key: &str, v: bool) {
    field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if v { "true" } else { "false" });
}

fn field_str(out: &mut String, key: &str, v: &str) {
    field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                let hex = b"0123456789abcdef";
                out.push(hex[(b as usize >> 4) & 0xf] as char);
                out.push(hex[b as usize & 0xf] as char);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A bounded, category-filtered event sink.
///
/// Keeps the most recent records in a ring buffer (oldest evicted first,
/// with a counter so truncation is never silent) and, when enabled,
/// renders every accepted record to a JSONL line as it arrives.
#[derive(Debug)]
pub struct TraceSink {
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    evicted: u64,
    next_seq: u64,
    mask: u32,
    jsonl: Option<Vec<String>>,
    last_at: SimTime,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A sink with the default ring capacity and every category enabled.
    pub fn new() -> TraceSink {
        TraceSink {
            capacity: DEFAULT_RING_CAPACITY,
            ring: VecDeque::new(),
            evicted: 0,
            next_seq: 0,
            mask: u32::MAX,
            jsonl: None,
            last_at: SimTime::ZERO,
        }
    }

    /// Replaces the ring capacity (records kept in memory).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace ring capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Restricts recording to the given categories only.
    pub fn with_categories(mut self, cats: &[TraceCategory]) -> TraceSink {
        self.mask = cats.iter().fold(0, |m, c| m | c.bit());
        self
    }

    /// Turns on the JSONL writer: every accepted record is also rendered
    /// to a line (unbounded — callers enable this with a category filter
    /// sized for the run).
    pub fn with_jsonl(mut self) -> TraceSink {
        self.jsonl = Some(Vec::new());
        self
    }

    /// Whether `cat` passes this sink's filter.
    pub fn enabled(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Records `event` at sim-time `at` if its category is enabled.
    pub fn emit(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled(event.category()) {
            return;
        }
        debug_assert!(at >= self.last_at, "trace time went backwards");
        self.last_at = at;
        let rec = TraceRecord {
            at,
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if let Some(lines) = &mut self.jsonl {
            lines.push(rec.to_jsonl());
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(rec);
    }

    /// Records currently held (oldest surviving first).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Rendered JSONL lines (empty unless [`TraceSink::with_jsonl`]).
    pub fn jsonl_lines(&self) -> &[String] {
        self.jsonl.as_deref().unwrap_or(&[])
    }

    /// Records evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records accepted over the sink's lifetime.
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Encodes the sink's ordering counters (`next_seq`, `evicted`,
    /// `last_at`) into a snapshot payload. The ring contents and JSONL
    /// backlog are deliberately excluded: they are O(history), and a
    /// restored session only needs the counters so its post-thaw stream
    /// continues the sequence numbering of the run it replaces.
    pub fn freeze_counters_into(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.next_seq);
        w.put_u64(self.evicted);
        w.put_time(self.last_at);
    }

    /// Restores the counters written by [`Self::freeze_counters_into`]
    /// onto this (freshly built) sink.
    pub fn restore_counters_from(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let next_seq = r.take_u64()?;
        let evicted = r.take_u64()?;
        let last_at = r.take_time()?;
        if evicted > next_seq {
            return Err(crate::snapshot::SnapshotError::Corrupt(
                "trace evicted exceeds emitted",
            ));
        }
        self.next_seq = next_seq;
        self.evicted = evicted;
        self.last_at = last_at;
        Ok(())
    }
}

/// Cloneable shared handle to a [`TraceSink`].
///
/// Clones share one sink, so the machine, the control-plane hooks, and
/// the harness all append to (and read) the same totally-ordered stream.
#[derive(Clone)]
pub struct TraceHandle {
    sink: Rc<RefCell<TraceSink>>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").finish_non_exhaustive()
    }
}

impl TraceHandle {
    /// Wraps a sink in a shared handle.
    pub fn new(sink: TraceSink) -> TraceHandle {
        TraceHandle {
            sink: Rc::new(RefCell::new(sink)),
        }
    }

    /// Emits one event (no-op if the category is filtered out).
    pub fn emit(&self, at: SimTime, event: TraceEvent) {
        self.sink.borrow_mut().emit(at, event);
    }

    /// Whether `cat` passes the sink's filter (lets emitters skip
    /// building high-frequency payloads entirely).
    pub fn enabled(&self, cat: TraceCategory) -> bool {
        self.sink.borrow().enabled(cat)
    }

    /// Copies out the records currently in the ring.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.sink.borrow().records().copied().collect()
    }

    /// Copies out the rendered JSONL lines.
    pub fn jsonl(&self) -> Vec<String> {
        self.sink.borrow().jsonl_lines().to_vec()
    }

    /// Records evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.sink.borrow().evicted()
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.sink.borrow().len()
    }

    /// True when the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.sink.borrow().is_empty()
    }

    /// Total records accepted over the sink's lifetime.
    pub fn emitted(&self) -> u64 {
        self.sink.borrow().emitted()
    }

    /// Encodes the shared sink's ordering counters into a snapshot
    /// payload (see [`TraceSink::freeze_counters_into`]).
    pub fn freeze_counters_into(&self, w: &mut crate::snapshot::SnapshotWriter) {
        self.sink.borrow().freeze_counters_into(w);
    }

    /// Restores the shared sink's ordering counters from a snapshot.
    pub fn restore_counters_from(
        &self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        self.sink.borrow_mut().restore_counters_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(j: f64) -> TraceEvent {
        TraceEvent::EnergyDelta {
            bucket: "Idle",
            energy_j: j,
        }
    }

    #[test]
    fn seq_is_monotone_and_zero_based() {
        let mut s = TraceSink::new();
        for i in 0..5 {
            s.emit(SimTime::from_secs(i), delta(i as f64));
        }
        let seqs: Vec<u64> = s.records().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3, 4]);
        assert_eq!(s.emitted(), 5);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut s = TraceSink::new().with_capacity(3);
        for i in 0..5 {
            s.emit(SimTime::from_secs(i), delta(i as f64));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        // Survivors are the newest three; seq numbers keep counting.
        let seqs: Vec<u64> = s.records().map(|r| r.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn category_filter_drops_without_consuming_seq() {
        let mut s = TraceSink::new().with_categories(&[TraceCategory::Control]);
        s.emit(SimTime::ZERO, delta(1.0)); // Energy: filtered.
        s.emit(
            SimTime::from_secs(1),
            TraceEvent::FidelityChange {
                pid: 0,
                name: "xanim",
                direction: "down",
                level: 1,
            },
        );
        assert_eq!(s.len(), 1);
        let recs: Vec<&TraceRecord> = s.records().collect();
        assert_eq!(recs[0].seq, 0, "filtered events must not consume seq");
        assert!(s.enabled(TraceCategory::Control));
        assert!(!s.enabled(TraceCategory::Energy));
    }

    #[test]
    fn jsonl_lines_match_records() {
        let mut s = TraceSink::new().with_jsonl();
        s.emit(SimTime::from_micros(1_500_000), delta(0.25));
        let lines = s.jsonl_lines();
        assert_eq!(lines.len(), 1);
        assert_eq!(
            lines[0],
            "{\"time_s\":1.5,\"seq\":0,\"ev\":\"energy_delta\",\"bucket\":\"Idle\",\
             \"energy_j\":0.25}"
        );
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::from("{");
        field_str(&mut out, "k", "a\"b\\c\nd\u{1}");
        assert_eq!(out, "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn handle_clones_share_one_sink() {
        let h = TraceHandle::new(TraceSink::new());
        let h2 = h.clone();
        h.emit(SimTime::ZERO, delta(1.0));
        h2.emit(SimTime::from_secs(1), delta(2.0));
        assert_eq!(h.len(), 2);
        assert_eq!(h.records()[1].seq, 1);
    }

    #[test]
    fn every_event_has_a_stable_category_and_tag() {
        // Spot-check the mapping used by filters and the JSONL `ev` tag.
        assert_eq!(
            TraceEvent::GoalInfeasible.category(),
            TraceCategory::Control
        );
        assert_eq!(
            TraceEvent::SupervisorEscalate {
                pid: 1,
                rung: "clamp"
            }
            .category(),
            TraceCategory::Supervisor
        );
        assert_eq!(TraceEvent::GoalInfeasible.tag(), "goal_infeasible");
        let r = TraceRecord {
            at: SimTime::from_secs(3),
            seq: 7,
            event: TraceEvent::GoalInfeasible,
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"time_s\":3,\"seq\":7,\"ev\":\"goal_infeasible\"}"
        );
    }

    #[test]
    fn service_events_render_and_categorize() {
        let applied = TraceEvent::ReconfigApplied {
            kind: "goal",
            value: 300.0,
        };
        let rejected = TraceEvent::ReconfigRejected {
            kind: "budget",
            reason: "non_positive",
        };
        let dead = TraceEvent::DeadLetter {
            reason: "out_of_order",
            count: 3,
        };
        for ev in [applied, rejected, dead] {
            assert_eq!(ev.category(), TraceCategory::Service);
        }
        let r = TraceRecord {
            at: SimTime::from_secs(5),
            seq: 1,
            event: applied,
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"time_s\":5,\"seq\":1,\"ev\":\"reconfig_applied\",\"kind\":\"goal\",\"value\":300}"
        );
        // Service is part of the control plane, distinct from Meter.
        let sink = TraceSink::new().with_categories(&TraceCategory::CONTROL_PLANE);
        assert!(sink.enabled(TraceCategory::Service));
        assert!(!sink.enabled(TraceCategory::Meter));
    }
}
