#![forbid(unsafe_code)]
//! Deterministic discrete-event simulation core.
//!
//! This crate provides the substrate shared by every other crate in the
//! workspace: simulated time ([`SimTime`], [`SimDuration`]), an event queue
//! with deterministic tie-breaking ([`EventQueue`]), reproducible random
//! streams ([`SimRng`]), and the statistics used to report experiment
//! results the way the paper does ([`stats`]) — "mean of five trials" with
//! 90% confidence intervals, plus the least-squares linear models of
//! Figures 11 and 14.
//!
//! Nothing in this crate knows about power, hardware, or Odyssey; it is a
//! generic, allocation-light simulation kernel.
//!
//! With the **`par`** feature the crate additionally re-exports the
//! [`simpar`] work pool as `simcore::par` — the seam through which the
//! experiment runner and bench suite fan seeded trials out across
//! threads. Simulation crates build without the feature: simulated code
//! stays single-threaded by construction, and simlint rule D1 confines
//! raw `std::thread` use to the simpar crate.

pub mod event;
pub mod fault;
pub mod rng;
pub mod series;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::EventId;
pub use event::EventQueue;
pub use fault::{FaultPlan, FaultSchedule, FaultWindow};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use snapshot::{
    Checkpoint, RunJournal, Snapshot, SnapshotError, SnapshotHasher, SnapshotReader,
    SnapshotWriter, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::{LinearFit, TrialStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCategory, TraceEvent, TraceHandle, TraceRecord, TraceSink};

/// The deterministic work pool, behind the `par` feature seam.
#[cfg(feature = "par")]
pub use simpar as par;
