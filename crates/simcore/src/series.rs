//! Time-series recording.
//!
//! Figure 19 of the paper plots energy supply and predicted demand against
//! elapsed time, together with per-application fidelity timelines.
//! [`TimeSeries`] is the recorder those plots are generated from: an
//! append-only sequence of `(SimTime, f64)` points with step-function
//! semantics (a recorded value holds until the next record).

use crate::time::{SimDuration, SimTime};

/// An append-only series of timestamped values with step semantics.
///
/// # Examples
///
/// ```
/// use simcore::{SimTime, TimeSeries};
///
/// let mut s = TimeSeries::new("fidelity");
/// s.record(SimTime::from_secs(0), 3.0);
/// s.record(SimTime::from_secs(10), 1.0);
/// assert_eq!(s.value_at(SimTime::from_secs(5)), Some(3.0));
/// assert_eq!(s.value_at(SimTime::from_secs(10)), Some(1.0));
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded point (series are recorded
    /// in simulation order).
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be recorded in order");
            if at == last {
                // Same-instant re-record overwrites; the last write wins,
                // matching step semantics.
                self.points.pop();
            }
        }
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Encodes the series (name and every point) into a snapshot payload.
    pub fn freeze_into(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_str(&self.name);
        w.put_usize(self.points.len());
        for &(at, v) in &self.points {
            w.put_time(at);
            w.put_f64(v);
        }
    }

    /// Decodes a series previously written by [`Self::freeze_into`],
    /// rejecting out-of-order points.
    pub fn thaw_from(
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let name = r.take_string()?;
        let n = r.take_usize()?;
        let mut points: Vec<(SimTime, f64)> = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let at = r.take_time()?;
            if points.last().is_some_and(|&(prev, _)| prev >= at) {
                return Err(crate::snapshot::SnapshotError::Corrupt(
                    "time series points out of order",
                ));
            }
            points.push((at, r.take_f64()?));
        }
        Ok(TimeSeries { name, points })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Step-function value at `at`: the most recent record not after `at`.
    pub fn value_at(&self, at: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Last recorded value.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Resamples the series onto a regular grid from the first record to
    /// `end`, inclusive of both endpoints, with step semantics.
    ///
    /// Useful for rendering Figure-19-style plots as fixed-width rows.
    pub fn resample(&self, step: SimDuration, end: SimTime) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resample step must be positive");
        let Some(&(start, _)) = self.points.first() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            if let Some(v) = self.value_at(t) {
                out.push((t, v));
            }
            t += step;
        }
        out
    }

    /// Number of value changes (adjacent points with different values).
    ///
    /// Fidelity timelines use this to count adaptations, as in Figure 20's
    /// "Number of Adaptations" columns.
    pub fn change_count(&self) -> usize {
        self.points.windows(2).filter(|w| w[0].1 != w[1].1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_semantics() {
        let mut s = TimeSeries::new("x");
        s.record(SimTime::from_secs(1), 10.0);
        s.record(SimTime::from_secs(3), 20.0);
        assert_eq!(s.value_at(SimTime::ZERO), None);
        assert_eq!(s.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(s.value_at(SimTime::from_secs(2)), Some(10.0));
        assert_eq!(s.value_at(SimTime::from_secs(3)), Some(20.0));
        assert_eq!(s.value_at(SimTime::from_secs(99)), Some(20.0));
    }

    #[test]
    fn same_instant_overwrites() {
        let mut s = TimeSeries::new("x");
        s.record(SimTime::from_secs(1), 1.0);
        s.record(SimTime::from_secs(1), 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(SimTime::from_secs(1)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_record_panics() {
        let mut s = TimeSeries::new("x");
        s.record(SimTime::from_secs(2), 1.0);
        s.record(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn resample_grid() {
        let mut s = TimeSeries::new("x");
        s.record(SimTime::from_secs(0), 1.0);
        s.record(SimTime::from_secs(5), 2.0);
        let grid = s.resample(SimDuration::from_secs(2), SimTime::from_secs(8));
        let values: Vec<f64> = grid.iter().map(|p| p.1).collect();
        assert_eq!(values, vec![1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn change_count_counts_transitions() {
        let mut s = TimeSeries::new("fidelity");
        for (t, v) in [(0, 3.0), (10, 3.0), (20, 2.0), (30, 2.0), (40, 3.0)] {
            s.record(SimTime::from_secs(t), v);
        }
        assert_eq!(s.change_count(), 2);
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.last(), None);
        assert!(s
            .resample(SimDuration::from_secs(1), SimTime::from_secs(10))
            .is_empty());
    }
}
