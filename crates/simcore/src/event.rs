//! Event queue with deterministic tie-breaking.
//!
//! Discrete-event simulation requires a total order over pending events.
//! Two events scheduled for the same instant are ordered by the sequence in
//! which they were pushed, so a run is a pure function of its inputs and
//! seed — a property every experiment in this workspace relies on when it
//! reports "mean of five trials" over seeded repetitions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle that identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    live: usize,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .finish_non_exhaustive()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `event` at instant `at` and returns a cancellation handle.
    pub fn push(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            cancelled: false,
            event,
        });
        self.live += 1;
        EventId(seq)
    }

    /// Removes and returns the earliest pending event.
    ///
    /// Events scheduled for the same instant pop in push order. Cancelled
    /// events are skipped.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !entry.cancelled {
                self.live -= 1;
                return Some((entry.at, entry.event));
            }
        }
        None
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if entry.cancelled {
                self.heap.pop();
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Cancels a previously-scheduled event.
    ///
    /// Returns `true` if the event was pending and is now cancelled, `false`
    /// if it had already fired or been cancelled. Cancellation is O(n) in
    /// the number of pending events; callers cancel rarely (device timeout
    /// resets), so this is acceptable and keeps pops O(log n).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let mut found = false;
        // `BinaryHeap` offers no in-place mutation; rebuild via drain. The
        // queue stays small (tens of entries) in every workload we run.
        let entries: Vec<Entry<E>> = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .map(|mut e| {
                if e.seq == id.0 && !e.cancelled {
                    e.cancelled = true;
                    found = true;
                }
                e
            })
            .collect();
        if found {
            self.live -= 1;
        }
        found
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id_a = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(id_a));
        assert!(!q.cancel(id_a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(5), "b");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }
}
