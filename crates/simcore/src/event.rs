//! Event queue with deterministic tie-breaking.
//!
//! Discrete-event simulation requires a total order over pending events.
//! Two events scheduled for the same instant are ordered by the sequence in
//! which they were pushed, so a run is a pure function of its inputs and
//! seed — a property every experiment in this workspace relies on when it
//! reports "mean of five trials" over seeded repetitions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle that identifies a scheduled event so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    /// The underlying sequence number — snapshot support only; treat as
    /// opaque everywhere else.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`Self::raw`] — snapshot support only.
    pub fn from_raw(seq: u64) -> Self {
        EventId(seq)
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    live: usize,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .finish_non_exhaustive()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `event` at instant `at` and returns a cancellation handle.
    pub fn push(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            cancelled: false,
            event,
        });
        self.live += 1;
        EventId(seq)
    }

    /// Removes and returns the earliest pending event.
    ///
    /// Events scheduled for the same instant pop in push order. Cancelled
    /// events are skipped.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !entry.cancelled {
                self.live -= 1;
                return Some((entry.at, entry.event));
            }
        }
        None
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if entry.cancelled {
                self.heap.pop();
            } else {
                return Some(entry.at);
            }
        }
        None
    }

    /// Cancels a previously-scheduled event.
    ///
    /// Returns `true` if the event was pending and is now cancelled, `false`
    /// if it had already fired or been cancelled. Cancellation is O(n) in
    /// the number of pending events; callers cancel rarely (device timeout
    /// resets), so this is acceptable and keeps pops O(log n).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let mut found = false;
        // `BinaryHeap` offers no in-place mutation; rebuild via drain. The
        // queue stays small (tens of entries) in every workload we run.
        let entries: Vec<Entry<E>> = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .map(|mut e| {
                if e.seq == id.0 && !e.cancelled {
                    e.cancelled = true;
                    found = true;
                }
                e
            })
            .collect();
        if found {
            self.live -= 1;
        }
        found
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Pending (non-cancelled) entries as `(at, seq, event)`, sorted by
    /// `(at, seq)` — the heap's internal layout is unspecified, so this
    /// is the canonical order a snapshot encodes.
    pub fn export_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .filter(|e| !e.cancelled)
            .map(|e| (e.at, e.seq, &e.event))
            .collect();
        out.sort_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// The next sequence number a [`Self::push`] would consume — part of
    /// the snapshot alongside [`Self::export_entries`], so restored
    /// handles stay unique.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuilds a queue from a snapshot: `next_seq` plus the pending
    /// entries in any order. Fails if an entry's sequence number is not
    /// strictly below `next_seq` or appears twice.
    pub fn restore(
        next_seq: u64,
        entries: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let mut heap = BinaryHeap::new();
        let mut seen = std::collections::BTreeSet::new();
        for (at, seq, event) in entries {
            if seq >= next_seq {
                return Err(crate::snapshot::SnapshotError::Corrupt(
                    "event seq beyond next_seq",
                ));
            }
            if !seen.insert(seq) {
                return Err(crate::snapshot::SnapshotError::Corrupt(
                    "duplicate event seq",
                ));
            }
            heap.push(Entry {
                at,
                seq,
                cancelled: false,
                event,
            });
        }
        let live = heap.len();
        Ok(EventQueue {
            heap,
            next_seq,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id_a = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(id_a));
        assert!(!q.cancel(id_a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(5), "b");
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn export_restore_round_trip_preserves_order_and_handles() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        let id = q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        q.cancel(id);
        let entries: Vec<(SimTime, u64, char)> = q
            .export_entries()
            .into_iter()
            .map(|(at, seq, &e)| (at, seq, e))
            .collect();
        assert_eq!(entries.len(), 2, "cancelled entries are not exported");
        let mut back = EventQueue::restore(q.next_seq(), entries).expect("restore");
        assert_eq!(back.len(), 2);
        // New pushes get fresh handles beyond everything restored.
        let fresh = back.push(SimTime::from_secs(0), 'z');
        assert_eq!(fresh.raw(), 3);
        let order: Vec<char> = std::iter::from_fn(|| back.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['z', 'b', 'c']);
    }

    #[test]
    fn restore_rejects_inconsistent_sequences() {
        let dup = [
            (SimTime::from_secs(1), 0u64, 'a'),
            (SimTime::from_secs(2), 0u64, 'b'),
        ];
        assert!(EventQueue::restore(5, dup).is_err());
        let beyond = [(SimTime::from_secs(1), 7u64, 'a')];
        assert!(EventQueue::restore(5, beyond).is_err());
    }
}
