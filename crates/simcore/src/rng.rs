//! Reproducible random streams.
//!
//! Every source of randomness in the workspace — PowerScope sample jitter,
//! the stochastic workloads of Section 5.4, per-trial data variation —
//! flows from a [`SimRng`] derived from an experiment seed. Independent
//! subsystems fork labelled child streams so that adding a new consumer of
//! randomness never perturbs existing ones (a classic simulation
//! reproducibility pitfall).

/// A seeded random stream with labelled forking.
///
/// Backed by a self-contained xoshiro256++ generator so the workspace
/// builds with no external dependencies (offline, vendored-free builds
/// are a tier-1 requirement).
///
/// # Examples
///
/// ```
/// use simcore::SimRng;
///
/// let mut a = SimRng::new(42).fork("sampler");
/// let mut b = SimRng::new(42).fork("sampler");
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

/// SplitMix64 step, used to mix fork labels into child seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, so forks are keyed by name rather than order.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into four non-zero state words with a SplitMix64
        // chain, the initialization xoshiro's authors recommend.
        let mut x = splitmix64(seed ^ 0x6a09_e667_f3bc_c908);
        let mut state = [0u64; 4];
        for lane in &mut state {
            x = splitmix64(x);
            *lane = x;
        }
        if state == [0, 0, 0, 0] {
            state[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SimRng { seed, state }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream keyed by `label`.
    ///
    /// Forking is a pure function of `(seed, label)`: it does not consume
    /// state from `self`, so the order in which subsystems fork their
    /// streams is irrelevant.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ hash_label(label)))
    }

    /// Derives an independent child stream keyed by an index (e.g. trial
    /// number).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(splitmix64(
            self.seed ^ hash_label(label) ^ splitmix64(index),
        ))
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        if lo == hi {
            return lo;
        }
        let v = lo + (hi - lo) * self.next_f64();
        // Floating-point rounding can land exactly on `hi`; keep the
        // half-open contract.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }

    /// Uniform integer sample in `[lo, hi]`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Widening-multiply range reduction (Lemire); the bias is far below
        // anything a simulation statistic can resolve.
        let reduced = ((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
        lo + reduced
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability: {p}");
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        // `1 - next_f64()` lies in (0, 1], keeping ln() finite.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Standard-normal sample via Box-Muller.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd.is_finite() && sd >= 0.0, "invalid sd: {sd}");
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        mean + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Picks an index according to non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform(0.0, total);
        for (i, w) in weights.iter().enumerate() {
            assert!(*w >= 0.0, "negative weight at index {i}");
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn forks_are_label_keyed_and_order_independent() {
        let root = SimRng::new(99);
        let mut a1 = root.fork("alpha");
        let _beta = root.fork("beta");
        let mut a2 = root.fork("alpha");
        assert_eq!(a1.uniform_u64(0, 1_000_000), a2.uniform_u64(0, 1_000_000));
    }

    #[test]
    fn different_labels_differ() {
        let root = SimRng::new(1);
        let mut a = root.fork("x");
        let mut b = root.fork("y");
        let xs: Vec<u64> = (0..8).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn indexed_forks_differ_by_index() {
        let root = SimRng::new(5);
        let mut t0 = root.fork_indexed("trial", 0);
        let mut t1 = root.fork_indexed("trial", 1);
        assert_ne!(
            t0.uniform_u64(0, u64::MAX - 1),
            t1.uniform_u64(0, u64::MAX - 1)
        );
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::new(2024);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean} too far from 3.0");
    }

    #[test]
    fn bernoulli_frequency_is_roughly_right() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.25)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq} too far from 0.25");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio} too far from 3.0");
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = SimRng::new(4);
        assert_eq!(rng.uniform(2.5, 2.5), 2.5);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(8);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }
}
