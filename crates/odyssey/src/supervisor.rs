//! The viceroy's application supervisor: crash tolerance for the control
//! plane.
//!
//! The paper's viceroy trusts applications: it assumes every registered
//! app keeps issuing operations, honours fidelity upcalls, and reports the
//! fidelity it actually runs at. A single misbehaving app breaks all three
//! assumptions and silently converts the goal-directed controller into an
//! open loop. The supervisor closes it again with four detectors and an
//! escalating response ladder, all driven by observations the viceroy
//! already has:
//!
//! - **hang** — the app has not polled for longer than the watchdog while
//!   PowerScope still attributes sustained power to it (a *blocked* app
//!   attributes think-time to Idle, so it never trips this);
//! - **ignore** — the goal controller's degrade upcalls keep returning
//!   "unchanged" although the app's fidelity view says it could degrade
//!   (fed live from [`GoalHandle::rejected_degrades_of`]);
//! - **overdraw (lie)** — attributed power exceeds the demand the app
//!   declared for its claimed fidelity level by more than the overdraw
//!   factor: the app says it runs at fidelity F but draws the power of F′;
//! - **crash** — the process terminated while its entry in the
//!   [`DemandLedger`] was still active; the declaration is
//!   garbage-collected so the viceroy stops budgeting supply for a corpse.
//!
//! Responses escalate one rung per strike: re-issue the degrade upcall,
//! then force a warden datapath clamp, then quarantine (suspend the
//! process, release its declared demand back to the survivors), and
//! finally — after a cooldown — a deterministic restart that recovers the
//! warden's last known-good fidelity level. Apps whose workloads refuse
//! [`machine::Workload::on_restart`] are retired instead. Everything is
//! opt-in: a rig that never attaches a supervisor behaves exactly as the
//! paper's controller does.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use machine::{AdaptDirection, ControlHook, MachineView, Pid};
use powerscope::AttributionFeed;
use simcore::{SimDuration, SimTime, TraceEvent};

use crate::demand::DemandLedger;
use crate::goal::GoalHandle;

/// Supervisor tuning knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Supervision period (also the hook period to attach at).
    pub period: SimDuration,
    /// No detections before this instant: the attribution feed needs a
    /// few windows before its power estimates mean anything.
    pub warmup: SimDuration,
    /// An app that has not polled for this long while drawing power is
    /// hung. Must exceed the longest honest CPU burst any workload emits.
    pub watchdog: SimDuration,
    /// Minimum attributed power, W, for hang and overdraw detection — a
    /// blocked app attributes ~0 W and must never strike.
    pub hang_power_w: f64,
    /// Overdraw threshold: strike when attributed power exceeds declared
    /// power at the claimed level times this factor.
    pub overdraw_factor: f64,
    /// Grace period after a claimed fidelity change before the overdraw
    /// cross-check resumes: the smoothed attribution of an honestly
    /// degrading app lags its level change by a few windows.
    pub response_window: SimDuration,
    /// Datapath clamp applied on the second strike.
    pub clamp_factor: f64,
    /// Strikes before quarantine.
    pub quarantine_after: u32,
    /// Clean ticks before one strike is forgiven (keeps rare false
    /// positives from ratcheting an honest app to quarantine).
    pub forgive_after: u32,
    /// Quarantine cooldown before a restart is attempted.
    pub restart_after: SimDuration,
    /// Restarts granted per app before it is retired for good.
    pub max_restarts: u32,
}

impl SupervisorConfig {
    /// Defaults sized for the paper's applications: a 30 s watchdog
    /// clears the longest honest speech-recognition burst, and the 1 W
    /// power gate clears every blocked state (a waiting app attributes
    /// think-time to Idle and reads near zero).
    pub fn standard() -> Self {
        SupervisorConfig {
            period: SimDuration::from_secs(1),
            warmup: SimDuration::from_secs(30),
            watchdog: SimDuration::from_secs(30),
            hang_power_w: 1.0,
            overdraw_factor: 1.6,
            response_window: SimDuration::from_secs(10),
            clamp_factor: 0.5,
            quarantine_after: 3,
            forgive_after: 10,
            restart_after: SimDuration::from_secs(60),
            max_restarts: 1,
        }
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig::standard()
    }
}

/// Counters the supervisor accumulates over a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SupervisorStats {
    /// Watchdog expiries with attributed power (hang detections).
    pub hang_strikes: usize,
    /// New rejected-degrade observations (ignored-upcall detections).
    pub ignore_strikes: usize,
    /// Attributed power above declared demand (lie detections).
    pub overdraw_strikes: usize,
    /// First-rung responses: degrade upcalls re-issued by the supervisor.
    pub reissued_upcalls: usize,
    /// Second-rung responses: forced warden datapath clamps.
    pub clamps: usize,
    /// Third-rung responses: processes suspended.
    pub quarantines: usize,
    /// Successful restarts after quarantine.
    pub restarts: usize,
    /// Apps permanently retired (restart refused or budget exhausted).
    pub retired: usize,
    /// Demand-ledger entries garbage-collected from dead processes.
    pub crash_releases: usize,
    /// Declared watts released back to surviving apps by quarantines and
    /// crash collections.
    pub redistributed_w: f64,
    /// Per-procedure overdraw attribution: for each overdraw strike, the
    /// procedure PowerScope billed most of the lying app's energy to —
    /// the operator-facing answer to "where did the undeclared power
    /// go?". Keys are procedure names, values strike counts.
    pub overdraw_hot_procedures: BTreeMap<&'static str, usize>,
}

#[derive(Debug, Default)]
struct Inner {
    stats: SupervisorStats,
    ledger: DemandLedger,
    /// Process indices struck from outside the supervisor's own
    /// detectors (the service layer's dead-letter escalation), drained
    /// into the response ladder at the next tick.
    external_strikes: Vec<usize>,
}

/// Caller-side handle to inspect the supervisor during and after a run.
#[derive(Clone)]
pub struct SupervisorHandle {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for SupervisorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorHandle").finish_non_exhaustive()
    }
}

impl SupervisorHandle {
    /// Current counters.
    pub fn stats(&self) -> SupervisorStats {
        self.inner.borrow().stats.clone()
    }

    /// A copy of the demand ledger.
    pub fn ledger(&self) -> DemandLedger {
        self.inner.borrow().ledger.clone()
    }

    /// Sum of declared power over all live declarations, W.
    pub fn total_declared_w(&self) -> f64 {
        self.inner.borrow().ledger.total_declared_w()
    }

    /// Posts a strike against a watched process from outside the
    /// supervisor's own detectors — the escalation hook the service
    /// layer uses when an app floods the session with malformed input.
    /// The strike enters the ordinary response ladder
    /// (reissue → clamp → quarantine) at the supervisor's next tick;
    /// strikes against unwatched processes are dropped.
    pub fn post_external_strike(&self, pid_index: usize) {
        self.inner.borrow_mut().external_strikes.push(pid_index);
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    Healthy,
    Clamped,
    Quarantined { since: SimTime },
    Retired,
}

#[derive(Debug)]
struct AppState {
    pid: Pid,
    phase: Phase,
    strikes: u32,
    clean_ticks: u32,
    restarts: u32,
    /// Last fidelity level observed while behaving — the warden state a
    /// restart recovers to.
    recovery_level: usize,
    /// Rejected-degrade count already accounted for.
    seen_rejections: usize,
    /// Last claimed fidelity level observed, and when it changed — the
    /// overdraw cross-check pauses for the response window after a change.
    level_seen: usize,
    level_changed_at: SimTime,
    /// Whether the done-transition has been processed.
    collected: bool,
}

/// The supervisor; attach with [`machine::Machine::add_hook`] at
/// [`SupervisorConfig::period`], after registering each watched app with
/// [`Supervisor::watch`].
pub struct Supervisor {
    cfg: SupervisorConfig,
    apps: Vec<AppState>,
    feed: AttributionFeed,
    goal: Option<GoalHandle>,
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor").finish_non_exhaustive()
    }
}

impl Supervisor {
    /// Creates a supervisor and its inspection handle.
    pub fn new(cfg: SupervisorConfig) -> (SupervisorHandle, Box<Supervisor>) {
        assert!(!cfg.period.is_zero(), "supervision period must be positive");
        assert!(
            cfg.overdraw_factor >= 1.0,
            "overdraw factor below 1 strikes honest apps"
        );
        let inner = Rc::new(RefCell::new(Inner::default()));
        let s = Supervisor {
            cfg,
            apps: Vec::new(),
            feed: AttributionFeed::new(),
            goal: None,
            inner: inner.clone(),
        };
        (SupervisorHandle { inner }, Box::new(s))
    }

    /// Registers an app: its declared sustained power per fidelity level
    /// (index 0 = lowest) and the level it starts at. Declarations enter
    /// the demand ledger immediately.
    pub fn watch(&mut self, pid: Pid, declared_w: Vec<f64>, initial_level: usize) {
        self.inner
            .borrow_mut()
            .ledger
            .declare(pid.index(), declared_w, initial_level);
        self.apps.push(AppState {
            pid,
            phase: Phase::Healthy,
            strikes: 0,
            clean_ticks: 0,
            restarts: 0,
            recovery_level: initial_level,
            seen_rejections: 0,
            level_seen: initial_level,
            level_changed_at: SimTime::ZERO,
            collected: false,
        });
    }

    /// Connects the goal controller's upcall feed so ignored degrades
    /// count as strikes.
    pub fn attach_goal(&mut self, goal: GoalHandle) {
        self.goal = Some(goal);
    }

    fn collect_crash(&mut self, app_i: usize, now: SimTime, view: &mut MachineView<'_>) {
        let app = &mut self.apps[app_i];
        app.collected = true;
        let pid = app.pid;
        let mut inner = self.inner.borrow_mut();
        if let Some(freed) = inner.ledger.release(app.pid.index()) {
            inner.stats.crash_releases += 1;
            inner.stats.redistributed_w += freed;
        }
        let retired = if app.restarts < self.cfg.max_restarts {
            app.phase = Phase::Quarantined { since: now };
            false
        } else {
            app.phase = Phase::Retired;
            inner.stats.retired += 1;
            true
        };
        drop(inner);
        view.emit_trace(TraceEvent::SupervisorEscalate {
            pid: pid.index() as u64,
            rung: "crash_collect",
        });
        if retired {
            view.emit_trace(TraceEvent::SupervisorEscalate {
                pid: pid.index() as u64,
                rung: "retire",
            });
        }
    }

    fn try_restart(&mut self, app_i: usize, view: &mut MachineView<'_>) {
        let (pid, recovery_level) = {
            let app = &self.apps[app_i];
            (app.pid, app.recovery_level)
        };
        if !view.restart(pid) {
            let mut inner = self.inner.borrow_mut();
            inner.stats.retired += 1;
            self.apps[app_i].phase = Phase::Retired;
            drop(inner);
            view.emit_trace(TraceEvent::SupervisorEscalate {
                pid: pid.index() as u64,
                rung: "retire",
            });
            return;
        }
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.restarts += 1;
            inner.ledger.reinstate(pid.index(), recovery_level);
        }
        view.emit_trace(TraceEvent::SupervisorEscalate {
            pid: pid.index() as u64,
            rung: "restart",
        });
        // Warden state recovery: walk the revived app back down to its
        // last known-good fidelity level before it runs again.
        let mut level = view.processes()[pid.index()].fidelity.level;
        while level > recovery_level && view.upcall(pid, AdaptDirection::Degrade) {
            level -= 1;
        }
        self.feed.reset(pid.index());
        let app = &mut self.apps[app_i];
        app.restarts += 1;
        app.strikes = 0;
        app.clean_ticks = 0;
        app.collected = false;
        app.phase = Phase::Healthy;
    }

    fn respond(&mut self, app_i: usize, now: SimTime, view: &mut MachineView<'_>) {
        let (pid, strikes) = {
            let app = &mut self.apps[app_i];
            app.strikes += 1;
            app.clean_ticks = 0;
            (app.pid, app.strikes)
        };
        let mut inner = self.inner.borrow_mut();
        if strikes == 1 {
            inner.stats.reissued_upcalls += 1;
            drop(inner);
            view.emit_trace(TraceEvent::SupervisorEscalate {
                pid: pid.index() as u64,
                rung: "reissue",
            });
            view.upcall(pid, AdaptDirection::Degrade);
        } else if strikes == 2 {
            inner.stats.clamps += 1;
            drop(inner);
            view.emit_trace(TraceEvent::SupervisorEscalate {
                pid: pid.index() as u64,
                rung: "clamp",
            });
            view.set_datapath_clamp(pid, self.cfg.clamp_factor);
            self.apps[app_i].phase = Phase::Clamped;
        } else if strikes >= self.cfg.quarantine_after && view.suspend(pid) {
            inner.stats.quarantines += 1;
            if let Some(freed) = inner.ledger.release(pid.index()) {
                inner.stats.redistributed_w += freed;
            }
            self.apps[app_i].phase = Phase::Quarantined { since: now };
            drop(inner);
            view.emit_trace(TraceEvent::SupervisorEscalate {
                pid: pid.index() as u64,
                rung: "quarantine",
            });
        }
    }
}

impl ControlHook for Supervisor {
    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        w.put_usize(self.apps.len());
        for app in &self.apps {
            match app.phase {
                Phase::Healthy => w.put_u64(0),
                Phase::Clamped => w.put_u64(1),
                Phase::Quarantined { since } => {
                    w.put_u64(2);
                    w.put_time(since);
                }
                Phase::Retired => w.put_u64(3),
            }
            w.put_u64(app.strikes as u64);
            w.put_u64(app.clean_ticks as u64);
            w.put_u64(app.restarts as u64);
            w.put_usize(app.recovery_level);
            w.put_usize(app.seen_rejections);
            w.put_usize(app.level_seen);
            w.put_time(app.level_changed_at);
            w.put_bool(app.collected);
        }
        self.feed.freeze_into(w);
        let inner = self.inner.borrow();
        w.put_usize(inner.stats.hang_strikes);
        w.put_usize(inner.stats.ignore_strikes);
        w.put_usize(inner.stats.overdraw_strikes);
        w.put_usize(inner.stats.reissued_upcalls);
        w.put_usize(inner.stats.clamps);
        w.put_usize(inner.stats.quarantines);
        w.put_usize(inner.stats.restarts);
        w.put_usize(inner.stats.retired);
        w.put_usize(inner.stats.crash_releases);
        w.put_f64(inner.stats.redistributed_w);
        w.put_usize(inner.stats.overdraw_hot_procedures.len());
        for (procedure, count) in &inner.stats.overdraw_hot_procedures {
            w.put_str(procedure);
            w.put_usize(*count);
        }
        inner.ledger.freeze_into(w);
        w.put_usize(inner.external_strikes.len());
        for idx in &inner.external_strikes {
            w.put_usize(*idx);
        }
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        if r.take_usize()? != self.apps.len() {
            return Err(simcore::SnapshotError::Corrupt(
                "watched-app count mismatch",
            ));
        }
        for app in &mut self.apps {
            app.phase = match r.take_u64()? {
                0 => Phase::Healthy,
                1 => Phase::Clamped,
                2 => Phase::Quarantined {
                    since: r.take_time()?,
                },
                3 => Phase::Retired,
                _ => return Err(simcore::SnapshotError::Corrupt("app phase tag")),
            };
            app.strikes = u32::try_from(r.take_u64()?)
                .map_err(|_| simcore::SnapshotError::Corrupt("strike count"))?;
            app.clean_ticks = u32::try_from(r.take_u64()?)
                .map_err(|_| simcore::SnapshotError::Corrupt("clean-tick count"))?;
            app.restarts = u32::try_from(r.take_u64()?)
                .map_err(|_| simcore::SnapshotError::Corrupt("restart count"))?;
            app.recovery_level = r.take_usize()?;
            app.seen_rejections = r.take_usize()?;
            app.level_seen = r.take_usize()?;
            app.level_changed_at = r.take_time()?;
            app.collected = r.take_bool()?;
        }
        self.feed = AttributionFeed::thaw_from(r)?;
        let mut inner = self.inner.borrow_mut();
        inner.stats.hang_strikes = r.take_usize()?;
        inner.stats.ignore_strikes = r.take_usize()?;
        inner.stats.overdraw_strikes = r.take_usize()?;
        inner.stats.reissued_upcalls = r.take_usize()?;
        inner.stats.clamps = r.take_usize()?;
        inner.stats.quarantines = r.take_usize()?;
        inner.stats.restarts = r.take_usize()?;
        inner.stats.retired = r.take_usize()?;
        inner.stats.crash_releases = r.take_usize()?;
        inner.stats.redistributed_w = r.take_f64()?;
        let hot = r.take_usize()?;
        inner.stats.overdraw_hot_procedures.clear();
        for _ in 0..hot {
            let procedure = r.take_static_str()?;
            let count = r.take_usize()?;
            if inner
                .stats
                .overdraw_hot_procedures
                .insert(procedure, count)
                .is_some()
            {
                return Err(simcore::SnapshotError::Corrupt(
                    "duplicate overdraw procedure",
                ));
            }
        }
        inner.ledger = DemandLedger::thaw_from(r)?;
        let n = r.take_usize()?;
        inner.external_strikes.clear();
        for _ in 0..n {
            inner.external_strikes.push(r.take_usize()?);
        }
        Ok(())
    }

    fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
        // Drain externally-posted strikes (service-layer escalation)
        // into the ordinary response ladder, in posting order.
        let external: Vec<usize> = std::mem::take(&mut self.inner.borrow_mut().external_strikes);
        for pid_index in external {
            let Some(app_i) = self.apps.iter().position(|a| a.pid.index() == pid_index) else {
                continue;
            };
            if matches!(
                self.apps[app_i].phase,
                Phase::Quarantined { .. } | Phase::Retired
            ) {
                continue;
            }
            view.emit_trace(TraceEvent::SupervisorStrike {
                pid: pid_index as u64,
                detector: "service",
                strikes: self.apps[app_i].strikes as u64 + 1,
            });
            self.respond(app_i, now, view);
        }
        let procs = view.processes();
        for i in 0..self.apps.len() {
            let pid = self.apps[i].pid;
            let info = &procs[pid.index()];

            // The attribution feed observes every tick so its estimate is
            // warm by the time detection starts.
            let cum_j = view.attributed_energy_j(pid);
            let power = self.feed.observe(pid.index(), now, cum_j).unwrap_or(0.0);

            if info.done && !self.apps[i].collected {
                self.collect_crash(i, now, view);
                continue;
            }

            match self.apps[i].phase {
                Phase::Retired => continue,
                Phase::Quarantined { since } => {
                    if self.apps[i].restarts < self.cfg.max_restarts
                        && now.saturating_since(since) >= self.cfg.restart_after
                    {
                        self.try_restart(i, view);
                    }
                    continue;
                }
                Phase::Healthy | Phase::Clamped => {}
            }
            if info.done || now < SimTime::ZERO + self.cfg.warmup {
                continue;
            }

            let mut strike = false;
            let next_strikes = self.apps[i].strikes as u64 + 1;
            {
                let mut inner = self.inner.borrow_mut();

                // Hang: silent on the poll interface, loud on the meter.
                let since_poll = now.saturating_since(view.last_poll_at(pid));
                if since_poll > self.cfg.watchdog && power > self.cfg.hang_power_w {
                    inner.stats.hang_strikes += 1;
                    strike = true;
                    view.emit_trace(TraceEvent::SupervisorStrike {
                        pid: pid.index() as u64,
                        detector: "hang",
                        strikes: next_strikes,
                    });
                }

                // Ignore: the goal controller's upcalls bounce off.
                if let Some(goal) = &self.goal {
                    let rejections = goal.rejected_degrades_of(pid.index());
                    if rejections > self.apps[i].seen_rejections {
                        self.apps[i].seen_rejections = rejections;
                        inner.stats.ignore_strikes += 1;
                        strike = true;
                        view.emit_trace(TraceEvent::SupervisorStrike {
                            pid: pid.index() as u64,
                            detector: "ignore",
                            strikes: next_strikes,
                        });
                    }
                }

                // Lie: claimed fidelity F, power of F'. Sync the claimed
                // level from the app's own report, then — once the
                // response window has passed — cross-check it against
                // PowerScope attribution.
                let level = info.fidelity.level;
                if level != self.apps[i].level_seen {
                    self.apps[i].level_seen = level;
                    self.apps[i].level_changed_at = now;
                }
                if inner.ledger.claimed_level(pid.index()) != Some(level) {
                    inner.ledger.set_claimed_level(pid.index(), level);
                }
                let settled =
                    now.saturating_since(self.apps[i].level_changed_at) >= self.cfg.response_window;
                if let Some(declared) = inner.ledger.declared_w(pid.index()) {
                    if settled
                        && power > declared * self.cfg.overdraw_factor
                        && power > self.cfg.hang_power_w
                    {
                        inner.stats.overdraw_strikes += 1;
                        // Demand accounting: name the procedure the
                        // undeclared power is actually going to, so the
                        // strike is actionable and not just punitive.
                        if let Some((procedure, _)) = view.attributed_hot_procedure(pid) {
                            *inner
                                .stats
                                .overdraw_hot_procedures
                                .entry(procedure)
                                .or_insert(0) += 1;
                        }
                        strike = true;
                        view.emit_trace(TraceEvent::SupervisorStrike {
                            pid: pid.index() as u64,
                            detector: "overdraw",
                            strikes: next_strikes,
                        });
                    }
                }
            }

            if strike {
                self.respond(i, now, view);
            } else {
                let app = &mut self.apps[i];
                if app.phase == Phase::Healthy {
                    app.recovery_level = info.fidelity.level;
                }
                if app.strikes > 0 {
                    app.clean_ticks += 1;
                    if app.clean_ticks >= self.cfg.forgive_after {
                        app.strikes -= 1;
                        app.clean_ticks = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw560x::PmPolicy;
    use machine::workload::ScriptedWorkload;
    use machine::{Activity, FidelityView, Machine, MachineConfig, Step, Workload};
    use simcore::SimDuration;

    /// A workload that behaves for `honest_until`, then spins forever
    /// without polling — the canonical hang.
    struct Spinner {
        honest_until: SimTime,
        horizon: SimTime,
        restarted: bool,
    }

    impl Workload for Spinner {
        fn name(&self) -> &'static str {
            "spinner"
        }
        fn poll(&mut self, now: SimTime) -> Step {
            if now >= self.horizon {
                return Step::Done;
            }
            if now < self.honest_until || self.restarted {
                // Honest phase: short burst, long think.
                Step::Run(Activity::Wait {
                    until: now + SimDuration::from_secs(1),
                })
            } else {
                // One enormous burst: no polls until the horizon.
                Step::Run(Activity::Cpu {
                    duration: self.horizon.saturating_since(now),
                    intensity: 1.0,
                    procedure: "spin",
                })
            }
        }
        fn fidelity(&self) -> FidelityView {
            FidelityView {
                level: 1,
                levels: 2,
            }
        }
        fn on_restart(&mut self, _now: SimTime) -> bool {
            self.restarted = true;
            true
        }
    }

    fn rig(horizon_s: u64) -> (Machine, SupervisorHandle) {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::enabled(),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(Spinner {
            honest_until: SimTime::from_secs(60),
            horizon: SimTime::from_secs(horizon_s),
            restarted: false,
        }));
        let cfg = SupervisorConfig::standard();
        let period = cfg.period;
        let (handle, mut sup) = Supervisor::new(cfg);
        // Generous declaration: the spin never overdraws it, so the
        // watchdog is the only detector that can fire.
        sup.watch(pid, vec![25.0, 50.0], 1);
        m.add_hook(period, sup);
        (m, handle)
    }

    #[test]
    fn hang_escalates_to_quarantine_and_restart() {
        let (mut m, handle) = rig(600);
        m.run_until(SimTime::from_secs(400));
        let stats = handle.stats();
        assert!(stats.hang_strikes >= 3, "{stats:?}");
        assert_eq!(stats.reissued_upcalls, 1, "{stats:?}");
        assert_eq!(stats.clamps, 1, "{stats:?}");
        assert_eq!(stats.quarantines, 1, "{stats:?}");
        assert_eq!(stats.restarts, 1, "{stats:?}");
        assert!(stats.redistributed_w > 0.0);
        // After restart the app behaves again; its declaration is live.
        assert!(handle.ledger().is_active(0));
    }

    #[test]
    fn honest_app_never_strikes() {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::enabled(),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(ScriptedWorkload::idle_for(
            "calm",
            SimDuration::from_secs(200),
        )));
        let cfg = SupervisorConfig::standard();
        let period = cfg.period;
        let (handle, mut sup) = Supervisor::new(cfg);
        sup.watch(pid, vec![1.0], 0);
        m.add_hook(period, sup);
        m.run_until(SimTime::from_secs(300));
        let stats = handle.stats();
        assert_eq!(stats.hang_strikes, 0, "{stats:?}");
        assert_eq!(stats.overdraw_strikes, 0, "{stats:?}");
        assert_eq!(stats.quarantines, 0, "{stats:?}");
        // The workload finished; its declaration was collected, and since
        // ScriptedWorkload refuses on_restart, the app was retired.
        assert_eq!(stats.crash_releases, 1, "{stats:?}");
        assert_eq!(stats.retired, 1, "{stats:?}");
    }

    #[test]
    fn crashed_app_declaration_is_garbage_collected() {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::enabled(),
            ..Default::default()
        });
        // Dies at 10 s without any release downcall.
        let pid = m.add_process(Box::new(ScriptedWorkload::idle_for(
            "crashy",
            SimDuration::from_secs(10),
        )));
        let _keepalive = m.add_process(Box::new(ScriptedWorkload::idle_for(
            "bg",
            SimDuration::from_secs(120),
        )));
        let cfg = SupervisorConfig {
            max_restarts: 0,
            ..SupervisorConfig::standard()
        };
        let period = cfg.period;
        let (handle, mut sup) = Supervisor::new(cfg);
        sup.watch(pid, vec![2.5], 0);
        m.add_hook(period, sup);
        m.run_until(SimTime::from_secs(60));
        let stats = handle.stats();
        assert_eq!(stats.crash_releases, 1);
        assert!((stats.redistributed_w - 2.5).abs() < 1e-12);
        assert_eq!(stats.retired, 1);
        assert!(!handle.ledger().is_active(pid.index()));
        assert_eq!(handle.total_declared_w(), 0.0);
    }

    #[test]
    fn overdraw_is_detected_against_declaration() {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::enabled(),
            ..Default::default()
        });
        // Declares 0.1 W but burns CPU continuously in short bursts (so it
        // keeps polling — no hang), drawing several watts.
        let script: Vec<Activity> = (0..3000)
            .map(|_| Activity::Cpu {
                duration: SimDuration::from_millis(100),
                intensity: 1.0,
                procedure: "burn",
            })
            .collect();
        let pid = m.add_process(Box::new(ScriptedWorkload::new("liar", script)));
        let cfg = SupervisorConfig::standard();
        let period = cfg.period;
        let (handle, mut sup) = Supervisor::new(cfg);
        sup.watch(pid, vec![0.1], 0);
        m.add_hook(period, sup);
        m.run_until(SimTime::from_secs(120));
        let stats = handle.stats();
        assert!(stats.overdraw_strikes >= 3, "{stats:?}");
        assert_eq!(stats.hang_strikes, 0, "kept polling: {stats:?}");
        assert_eq!(stats.quarantines, 1, "{stats:?}");
        // Demand accounting names the procedure the undeclared power
        // went to, once per overdraw strike.
        let hot: usize = stats.overdraw_hot_procedures.values().sum();
        assert_eq!(hot, stats.overdraw_strikes, "{stats:?}");
        assert!(
            stats.overdraw_hot_procedures.contains_key("burn"),
            "{stats:?}"
        );
    }
}
