//! Application priorities (Section 5.1.3).
//!
//! "When multiple applications are executing concurrently, Odyssey must
//! decide which to notify. A simple scheme based on user-specified
//! priorities is used for this ... Odyssey always tries to degrade a
//! lower-priority application before degrading a higher-priority one —
//! upgrades occur in the reverse order."
//!
//! The paper's priorities were static, with a dynamic-priority interface
//! listed as in progress; we implement both.

use machine::Pid;

/// A total priority order over processes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PriorityTable {
    /// Process ids from lowest priority to highest.
    order: Vec<Pid>,
}

impl PriorityTable {
    /// Creates a table from pids ordered lowest-priority first.
    ///
    /// # Panics
    ///
    /// Panics if a pid appears twice.
    pub fn new(lowest_first: Vec<Pid>) -> Self {
        for (i, p) in lowest_first.iter().enumerate() {
            assert!(
                !lowest_first[i + 1..].contains(p),
                "duplicate pid in priority table"
            );
        }
        PriorityTable {
            order: lowest_first,
        }
    }

    /// Pids in degrade order (lowest priority first).
    pub fn degrade_order(&self) -> impl Iterator<Item = Pid> + '_ {
        self.order.iter().copied()
    }

    /// Pids in upgrade order (highest priority first).
    pub fn upgrade_order(&self) -> impl Iterator<Item = Pid> + '_ {
        self.order.iter().rev().copied()
    }

    /// Rank of a pid (0 = lowest priority), if present.
    pub fn rank(&self, pid: Pid) -> Option<usize> {
        self.order.iter().position(|p| *p == pid)
    }

    /// Dynamically moves a pid to a new rank (0 = lowest priority); the
    /// interface the paper says it was implementing.
    ///
    /// # Panics
    ///
    /// Panics if the pid is absent or the rank is out of range.
    pub fn set_rank(&mut self, pid: Pid, rank: usize) {
        // simlint: allow(D5) — documented # Panics contract of set_rank
        let cur = self.rank(pid).expect("pid not in priority table");
        assert!(rank < self.order.len(), "rank out of range");
        let p = self.order.remove(cur);
        self.order.insert(rank, p);
    }

    /// Number of processes in the table.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::workload::ScriptedWorkload;
    use machine::{Machine, MachineConfig};

    fn pids(n: usize) -> Vec<Pid> {
        let mut m = Machine::new(MachineConfig::baseline());
        (0..n)
            .map(|_| m.add_process(Box::new(ScriptedWorkload::new("p", vec![]))))
            .collect()
    }

    #[test]
    fn degrade_and_upgrade_orders_are_reversed() {
        let ps = pids(4);
        let t = PriorityTable::new(ps.clone());
        let down: Vec<Pid> = t.degrade_order().collect();
        let up: Vec<Pid> = t.upgrade_order().collect();
        assert_eq!(down, ps);
        let mut rev = ps.clone();
        rev.reverse();
        assert_eq!(up, rev);
    }

    #[test]
    fn ranks() {
        let ps = pids(3);
        let t = PriorityTable::new(ps.clone());
        assert_eq!(t.rank(ps[0]), Some(0));
        assert_eq!(t.rank(ps[2]), Some(2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn dynamic_reprioritisation() {
        let ps = pids(3);
        let mut t = PriorityTable::new(ps.clone());
        // Promote the lowest-priority app to the top.
        t.set_rank(ps[0], 2);
        let order: Vec<Pid> = t.degrade_order().collect();
        assert_eq!(order, vec![ps[1], ps[2], ps[0]]);
    }

    #[test]
    #[should_panic(expected = "duplicate pid")]
    fn duplicates_rejected() {
        let ps = pids(1);
        let _ = PriorityTable::new(vec![ps[0], ps[0]]);
    }

    #[test]
    fn empty_table() {
        let t = PriorityTable::default();
        assert!(t.is_empty());
        assert_eq!(t.degrade_order().count(), 0);
    }
}
