//! The viceroy: Odyssey's central resource manager.
//!
//! "The viceroy is the Odyssey component responsible for monitoring the
//! availability of resources and managing their use." Two faces:
//!
//! - [`Viceroy`] — the client-side facade applications talk to: a warden
//!   registry (type-specific fidelity spaces and request annotations)
//!   plus resource expectation windows;
//! - [`BandwidthMonitor`] — the original Odyssey adaptation ("the initial
//!   Odyssey prototype only supported network bandwidth adaptation"): a
//!   periodic hook that passively estimates each registered application's
//!   achieved network throughput, compares it against the application's
//!   expectation window, and issues upcalls when the level strays
//!   outside. The energy work of Section 5 layers the goal-directed
//!   controller on the same upcall mechanism.

use machine::{AdaptDirection, ControlHook, MachineView, Pid};
use simcore::{SimDuration, SimTime, TraceEvent};

use crate::expectation::{Expectation, ExpectationRegistry, Resource, WindowEvent};
use crate::warden::{Warden, WardenRegistry};

/// The client-side resource-management facade.
#[derive(Default)]
pub struct Viceroy {
    wardens: WardenRegistry,
    expectations: ExpectationRegistry,
}

impl std::fmt::Debug for Viceroy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Viceroy").finish_non_exhaustive()
    }
}

impl Viceroy {
    /// Creates an empty viceroy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a warden for a data type.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate data type (one warden per type).
    pub fn register_warden(&mut self, warden: Box<dyn Warden>) {
        self.wardens.register(warden);
    }

    /// The request annotation a fetch of `data_type` at `level` carries
    /// to the server (e.g. the map filter/crop parameters).
    ///
    /// # Panics
    ///
    /// Panics if no warden covers the type or the level is out of range.
    pub fn annotate(&self, data_type: &str, level: usize) -> String {
        self.wardens
            .get(data_type)
            .unwrap_or_else(|| panic!("no warden for data type {data_type:?}"))
            .annotate(level)
    }

    /// Registers (or replaces) a process's expectation window.
    pub fn expect(&mut self, resource: Resource, pid: Pid, window: Expectation) {
        self.expectations.register(resource, pid, window);
    }

    /// Evaluates a resource level against all registered windows.
    pub fn evaluate(&self, resource: Resource, value: f64) -> Vec<(usize, WindowEvent)> {
        self.expectations.evaluate(resource, value)
    }

    /// Access to the warden registry.
    pub fn wardens(&self) -> &WardenRegistry {
        &self.wardens
    }

    /// Access to the expectation registry.
    pub fn expectations(&self) -> &ExpectationRegistry {
        &self.expectations
    }
}

/// A bandwidth-window registration for one application.
#[derive(Clone, Copy, Debug)]
struct Registration {
    pid: Pid,
    window: Expectation,
    last_upcall: Option<SimTime>,
}

/// Passive per-application bandwidth estimation with expectation-window
/// upcalls — the original Odyssey adaptation loop.
///
/// Supply is estimated from each application's own transfers: the goodput
/// of the most recent completed receive ([`MachineView::transfer_rate_of`])
/// is the bandwidth the network actually offered it, independent of how
/// little the application chose to fetch — which is what lets the monitor
/// detect *headroom* and upgrade a degraded application once the link
/// clears.
pub struct BandwidthMonitor {
    regs: Vec<Registration>,
    window: SimDuration,
    upcall_min_interval: SimDuration,
    /// (time, pid index, event) log for tests and tracing.
    events: Vec<(SimTime, usize, WindowEvent)>,
}

impl std::fmt::Debug for BandwidthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandwidthMonitor")
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

impl BandwidthMonitor {
    /// Creates a monitor that evaluates throughput over `window`-long
    /// periods, rate-limiting upcalls per application to one per
    /// `upcall_min_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration, upcall_min_interval: SimDuration) -> Self {
        assert!(!window.is_zero(), "evaluation window must be positive");
        BandwidthMonitor {
            regs: Vec::new(),
            window,
            upcall_min_interval,
            events: Vec::new(),
        }
    }

    /// The evaluation window; attach the monitor with this hook period.
    pub fn period(&self) -> SimDuration {
        self.window
    }

    /// Registers an application's bandwidth expectation, bits/s.
    pub fn register(&mut self, pid: Pid, window: Expectation) {
        self.regs.push(Registration {
            pid,
            window,
            last_upcall: None,
        });
    }

    /// The window-departure events observed so far.
    pub fn events(&self) -> &[(SimTime, usize, WindowEvent)] {
        &self.events
    }
}

impl ControlHook for BandwidthMonitor {
    fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
        // Two-phase: measure first, then upcall, so a borrow of `view`
        // isn't held across mutation.
        let mut pending = Vec::new();
        for (i, r) in self.regs.iter().enumerate() {
            let Some(bps) = view.transfer_rate_of(r.pid) else {
                continue;
            };
            let event = if bps < r.window.low {
                Some(WindowEvent::BelowWindow)
            } else if bps >= r.window.high {
                Some(WindowEvent::AboveWindow)
            } else {
                None
            };
            let Some(event) = event else { continue };
            if let Some(last) = r.last_upcall {
                if now.since(last) < self.upcall_min_interval {
                    continue;
                }
            }
            pending.push((i, event));
        }
        for (i, event) in pending {
            let dir = match event {
                WindowEvent::BelowWindow => AdaptDirection::Degrade,
                WindowEvent::AboveWindow => AdaptDirection::Upgrade,
            };
            let changed = view.upcall(self.regs[i].pid, dir);
            view.emit_trace(TraceEvent::WardenUpcall {
                pid: self.regs[i].pid.index() as u64,
                event: match event {
                    WindowEvent::BelowWindow => "below",
                    WindowEvent::AboveWindow => "above",
                },
                changed,
            });
            if changed {
                self.regs[i].last_upcall = Some(now);
                self.events.push((now, self.regs[i].pid.index(), event));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::{FidelityLevel, FidelitySpace};
    use machine::workload::ScriptedWorkload;
    use machine::{Activity, FidelityView, Machine, MachineConfig, Step, Workload};
    use simcore::SimRng;

    struct MapWarden {
        space: FidelitySpace,
    }

    impl Warden for MapWarden {
        fn data_type(&self) -> &'static str {
            "map"
        }
        fn space(&self) -> &FidelitySpace {
            &self.space
        }
        fn annotate(&self, level: usize) -> String {
            format!("filter={}", self.space.level(level).name)
        }
    }

    #[test]
    fn viceroy_facade_routes_annotations() {
        let mut v = Viceroy::new();
        v.register_warden(Box::new(MapWarden {
            space: FidelitySpace::new(
                "map",
                vec![
                    FidelityLevel {
                        name: "secondary-roads",
                        data_ratio: 0.3,
                        quality: 0.5,
                    },
                    FidelityLevel {
                        name: "none",
                        data_ratio: 1.0,
                        quality: 1.0,
                    },
                ],
            ),
        }));
        assert_eq!(v.annotate("map", 0), "filter=secondary-roads");
        assert_eq!(v.wardens().len(), 1);
    }

    #[test]
    #[should_panic(expected = "no warden")]
    fn unknown_type_panics() {
        Viceroy::new().annotate("video", 0);
    }

    /// A streaming workload whose per-period fetch size depends on its
    /// fidelity level — a miniature video player.
    struct Streamer {
        level: usize,
        until: SimTime,
    }

    impl Streamer {
        fn bytes(&self) -> u64 {
            match self.level {
                0 => 10_000, // ~0.8 Mb/s at 10 Hz
                _ => 22_000, // ~1.76 Mb/s at 10 Hz
            }
        }
    }

    impl Workload for Streamer {
        fn name(&self) -> &'static str {
            "streamer"
        }
        fn poll(&mut self, now: SimTime) -> Step {
            if now >= self.until {
                return Step::Done;
            }
            // Alternate fetch and pacing to a 100 ms period.
            let phase = now.as_micros() % 100_000;
            if phase == 0 {
                Step::Run(Activity::BulkFetch {
                    bytes: self.bytes(),
                    procedure: "stream",
                })
            } else {
                let next = now + SimDuration::from_micros(100_000 - phase);
                Step::Run(Activity::Wait { until: next })
            }
        }
        fn fidelity(&self) -> FidelityView {
            FidelityView::new(self.level, 2)
        }
        fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
            match dir {
                AdaptDirection::Degrade if self.level > 0 => {
                    self.level -= 1;
                    true
                }
                AdaptDirection::Upgrade if self.level < 1 => {
                    self.level += 1;
                    true
                }
                _ => false,
            }
        }
    }

    /// Alone on the link, the streamer meets its expectation and keeps
    /// full fidelity.
    #[test]
    fn uncontended_stream_stays_at_full_fidelity() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.add_process(Box::new(Streamer {
            level: 1,
            until: SimTime::from_secs(20),
        }));
        let mut monitor =
            BandwidthMonitor::new(SimDuration::from_secs(1), SimDuration::from_secs(2));
        monitor.register(pid, Expectation::new(1.2e6, 10.0e6));
        let period = monitor.period();
        m.add_hook(period, Box::new(monitor));
        let report = m.run();
        assert_eq!(report.adaptations_of("streamer"), 0);
    }

    /// After the competitor drains, the per-transfer goodput recovers to
    /// the full link rate, signalling headroom: the monitor upgrades the
    /// streamer back.
    #[test]
    fn recovery_triggers_upgrade() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.add_process(Box::new(Streamer {
            level: 1,
            until: SimTime::from_secs(40),
        }));
        m.add_background_process(Box::new(ScriptedWorkload::new(
            "hog",
            vec![
                Activity::Wait {
                    until: SimTime::from_secs(5),
                },
                Activity::BulkFetch {
                    bytes: 2_000_000,
                    procedure: "hog_fetch",
                },
            ],
        )));
        let mut monitor =
            BandwidthMonitor::new(SimDuration::from_secs(1), SimDuration::from_secs(2));
        // Upper edge below the clear-link goodput (2 Mb/s), so headroom
        // is visible once the hog finishes.
        monitor.register(pid, Expectation::new(1.2e6, 1.95e6));
        let period = monitor.period();
        m.add_hook(period, Box::new(monitor));
        let report = m.run();
        let series = report
            .fidelity
            .iter()
            .find(|s| s.name() == "streamer")
            .unwrap();
        // Degraded during contention, restored by the end.
        assert_eq!(series.value_at(SimTime::from_secs(15)).unwrap(), 0.0);
        assert_eq!(series.value_at(SimTime::from_secs(39)).unwrap(), 1.0);
    }

    /// A competing bulk transfer steals bandwidth; the monitor sees the
    /// streamer fall below its window and degrades it.
    #[test]
    fn contention_triggers_bandwidth_degrade() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.add_process(Box::new(Streamer {
            level: 1,
            until: SimTime::from_secs(30),
        }));
        // A competitor that hogs the link from t=5 to roughly t=25.
        let mut rng = SimRng::new(1);
        let _ = rng.uniform(0.0, 1.0);
        m.add_background_process(Box::new(ScriptedWorkload::new(
            "hog",
            vec![
                Activity::Wait {
                    until: SimTime::from_secs(5),
                },
                Activity::BulkFetch {
                    bytes: 4_000_000,
                    procedure: "hog_fetch",
                },
            ],
        )));
        let mut monitor =
            BandwidthMonitor::new(SimDuration::from_secs(1), SimDuration::from_secs(2));
        monitor.register(pid, Expectation::new(1.2e6, 10.0e6));
        let period = monitor.period();
        m.add_hook(period, Box::new(monitor));
        let report = m.run();
        assert!(
            report.adaptations_of("streamer") >= 1,
            "no adaptation under contention"
        );
        // The fidelity series must show a drop to level 0 during the
        // contention window.
        let series = report
            .fidelity
            .iter()
            .find(|s| s.name() == "streamer")
            .unwrap();
        let during = series.value_at(SimTime::from_secs(15)).unwrap();
        assert_eq!(during, 0.0, "streamer not degraded under contention");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = BandwidthMonitor::new(SimDuration::ZERO, SimDuration::ZERO);
    }
}
