#![forbid(unsafe_code)]
//! Odyssey: energy-aware adaptation (the paper's primary contribution).
//!
//! Odyssey mediates between applications that can trade *data fidelity*
//! for resource consumption and an operating system that monitors resource
//! supply and demand. This crate implements the energy extension the paper
//! contributes on top of the original bandwidth-adaptive Odyssey:
//!
//! - [`fidelity`] — the type-specific notion of data degradation;
//! - [`warden`] — per-data-type code components registering fidelity
//!   spaces with the viceroy;
//! - [`expectation`] — the resource-expectation window API: applications
//!   state bounds on a resource, and leave-window events trigger upcalls;
//! - [`demand`] — exponential smoothing of observed power with a
//!   half-life tied to time-remaining, and the future-demand predictor;
//! - [`priority`] — the user-specified priority order that picks which
//!   application to degrade first (and upgrade last);
//! - [`goal`] — the goal-directed controller of Section 5: given an
//!   initial energy value and a user-specified duration, it monitors
//!   supply and demand twice a second and issues degrade/upgrade upcalls
//!   with hysteresis so the battery lasts exactly as long as asked;
//! - [`viceroy`] — the resource-management facade plus the original
//!   Odyssey bandwidth-adaptation loop (passive throughput estimation
//!   against expectation windows), the substrate the energy work extends;
//! - [`supervisor`] — the crash-tolerant control plane: watchdogs,
//!   demand-vs-attribution cross-checks, quarantine, and deterministic
//!   restart for applications that hang, crash, lie, or ignore upcalls.

pub mod demand;
pub mod expectation;
pub mod fidelity;
pub mod goal;
pub mod priority;
pub mod supervisor;
pub mod viceroy;
pub mod warden;

pub use demand::{DemandLedger, Smoother};
pub use expectation::{Expectation, ExpectationRegistry, Resource, WindowEvent};
pub use fidelity::{FidelityLevel, FidelitySpace};
pub use goal::{GoalConfig, GoalController, GoalHandle, GoalOutcome, Hardening};
pub use priority::PriorityTable;
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorHandle, SupervisorStats};
pub use viceroy::{BandwidthMonitor, Viceroy};
pub use warden::{Warden, WardenRegistry};
