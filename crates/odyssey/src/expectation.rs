//! Resource expectations and upcall triggering.
//!
//! Odyssey's application interface is built on *resource expectation
//! windows*: an application tells the viceroy the range of a resource it
//! is prepared to operate in; "if resource levels stray beyond an
//! application's expectation, Odyssey notifies it through an upcall",
//! and the application re-registers a window matched to its new fidelity.
//!
//! The energy work inherits this structure with the *energy balance*
//! (supply minus predicted demand) as the resource.

use std::collections::BTreeMap;

use machine::Pid;

/// A resource the viceroy tracks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Resource {
    /// Residual energy minus predicted demand, J.
    EnergyBalance,
    /// Network bandwidth, bits/s (the original Odyssey resource).
    Bandwidth,
    /// Hook for additional resources without changing the enum's users.
    Other(u32),
}

/// A half-open expectation window `[low, high)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Expectation {
    /// Lowest tolerable resource level.
    pub low: f64,
    /// Level above which the application wants to know (it could raise
    /// fidelity).
    pub high: f64,
}

impl Expectation {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics unless `low <= high` and both are finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low.is_finite() && high.is_finite() && low <= high);
        Expectation { low, high }
    }

    /// Whether `value` lies inside the window.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low && value < self.high
    }
}

/// How a resource level left a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowEvent {
    /// The level fell below the window: the application must degrade.
    BelowWindow,
    /// The level rose above the window: the application may upgrade.
    AboveWindow,
}

/// Registered expectations for one resource across applications.
#[derive(Default, Debug)]
pub struct ExpectationRegistry {
    windows: BTreeMap<(Resource, usize), Expectation>,
}

impl ExpectationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a process's window for a resource.
    pub fn register(&mut self, resource: Resource, pid: Pid, window: Expectation) {
        self.windows.insert((resource, pid.index()), window);
    }

    /// Removes a process's window.
    pub fn deregister(&mut self, resource: Resource, pid: Pid) -> bool {
        self.windows.remove(&(resource, pid.index())).is_some()
    }

    /// Evaluates a new resource level against every registered window,
    /// returning the upcalls that must be issued (pid index order).
    pub fn evaluate(&self, resource: Resource, value: f64) -> Vec<(usize, WindowEvent)> {
        self.windows
            .iter()
            .filter(|((r, _), _)| *r == resource)
            .filter_map(|((_, pid), w)| {
                if value < w.low {
                    Some((*pid, WindowEvent::BelowWindow))
                } else if value >= w.high {
                    Some((*pid, WindowEvent::AboveWindow))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Number of registered windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(registry_probe: usize) -> Pid {
        // `Pid` can only be minted by a machine; round-trip through a
        // throwaway machine to get real pids for registry tests.
        use machine::workload::ScriptedWorkload;
        use machine::{Machine, MachineConfig};
        let mut m = Machine::new(MachineConfig::baseline());
        let mut last = None;
        for _ in 0..=registry_probe {
            last = Some(m.add_process(Box::new(ScriptedWorkload::new("p", vec![]))));
        }
        last.expect("at least one process")
    }

    #[test]
    fn window_containment() {
        let w = Expectation::new(10.0, 20.0);
        assert!(!w.contains(9.9));
        assert!(w.contains(10.0));
        assert!(w.contains(19.9));
        assert!(!w.contains(20.0));
    }

    #[test]
    fn evaluate_flags_leavers_only() {
        let mut reg = ExpectationRegistry::new();
        reg.register(
            Resource::EnergyBalance,
            pid(0),
            Expectation::new(0.0, 100.0),
        );
        reg.register(
            Resource::EnergyBalance,
            pid(1),
            Expectation::new(50.0, 150.0),
        );
        let events = reg.evaluate(Resource::EnergyBalance, 25.0);
        assert_eq!(events, vec![(1, WindowEvent::BelowWindow)]);
        let events = reg.evaluate(Resource::EnergyBalance, 120.0);
        assert_eq!(events, vec![(0, WindowEvent::AboveWindow)]);
        let events = reg.evaluate(Resource::EnergyBalance, 75.0);
        assert!(events.is_empty());
    }

    #[test]
    fn resources_are_independent() {
        let mut reg = ExpectationRegistry::new();
        reg.register(Resource::EnergyBalance, pid(0), Expectation::new(0.0, 1.0));
        reg.register(Resource::Bandwidth, pid(0), Expectation::new(1e6, 2e6));
        assert!(reg.evaluate(Resource::Bandwidth, 0.5).iter().all(|(_, e)| {
            // 0.5 b/s is below the bandwidth window but would be inside
            // nothing else.
            *e == WindowEvent::BelowWindow
        }));
        assert_eq!(reg.evaluate(Resource::EnergyBalance, 0.5).len(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn reregister_replaces_window() {
        let mut reg = ExpectationRegistry::new();
        let p = pid(0);
        reg.register(Resource::EnergyBalance, p, Expectation::new(0.0, 1.0));
        reg.register(Resource::EnergyBalance, p, Expectation::new(5.0, 9.0));
        assert_eq!(reg.len(), 1);
        assert_eq!(
            reg.evaluate(Resource::EnergyBalance, 2.0),
            vec![(p.index(), WindowEvent::BelowWindow)]
        );
        assert!(reg.deregister(Resource::EnergyBalance, p));
        assert!(!reg.deregister(Resource::EnergyBalance, p));
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic]
    fn inverted_window_rejected() {
        let _ = Expectation::new(2.0, 1.0);
    }
}
