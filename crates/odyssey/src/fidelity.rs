//! Fidelity: the degree to which data presented at the client matches the
//! reference copy at the server.
//!
//! Fidelity is type-specific — "different kinds of data can be degraded
//! differently" — so a fidelity space is an ordered list of named levels
//! with per-level annotations (relative data volume and quality) that the
//! wardens register on behalf of applications. Level 0 is the lowest
//! fidelity the application supports; the last level is full fidelity.

/// One level in a fidelity space.
#[derive(Clone, Debug, PartialEq)]
pub struct FidelityLevel {
    /// Human-readable name (e.g. `"Premiere-C"`, `"JPEG-25"`).
    pub name: &'static str,
    /// Data volume at this level relative to full fidelity, in `(0, 1]`.
    pub data_ratio: f64,
    /// Subjective quality relative to full fidelity, in `(0, 1]`.
    pub quality: f64,
}

/// An ordered set of fidelity levels for one data type.
#[derive(Clone, Debug, PartialEq)]
pub struct FidelitySpace {
    /// The data type this space degrades (e.g. `"video"`).
    pub data_type: &'static str,
    levels: Vec<FidelityLevel>,
}

impl FidelitySpace {
    /// Creates a space from levels ordered lowest-fidelity first.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, any ratio is outside `(0, 1]`, or the
    /// top level is not full fidelity (`data_ratio == 1`).
    pub fn new(data_type: &'static str, levels: Vec<FidelityLevel>) -> Self {
        assert!(!levels.is_empty(), "fidelity space must have levels");
        for l in &levels {
            assert!(
                l.data_ratio > 0.0 && l.data_ratio <= 1.0,
                "invalid data ratio {} for {}",
                l.data_ratio,
                l.name
            );
            assert!(
                l.quality > 0.0 && l.quality <= 1.0,
                "invalid quality {} for {}",
                l.quality,
                l.name
            );
        }
        // simlint: allow(D5) — an empty fidelity ladder is a construction bug; this panic is the validation
        let top = levels.last().expect("non-empty");
        assert!(
            (top.data_ratio - 1.0).abs() < 1e-9,
            "top level must be full fidelity"
        );
        FidelitySpace { data_type, levels }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if the space is empty (never; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level at `index` (0 = lowest fidelity).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn level(&self, index: usize) -> &FidelityLevel {
        &self.levels[index]
    }

    /// Index of full fidelity.
    pub fn full(&self) -> usize {
        self.levels.len() - 1
    }

    /// All levels, lowest first.
    pub fn levels(&self) -> &[FidelityLevel] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_space() -> FidelitySpace {
        FidelitySpace::new(
            "video",
            vec![
                FidelityLevel {
                    name: "Premiere-C+half-window",
                    data_ratio: 0.4,
                    quality: 0.5,
                },
                FidelityLevel {
                    name: "Premiere-C",
                    data_ratio: 0.6,
                    quality: 0.7,
                },
                FidelityLevel {
                    name: "Premiere-B",
                    data_ratio: 0.8,
                    quality: 0.85,
                },
                FidelityLevel {
                    name: "full",
                    data_ratio: 1.0,
                    quality: 1.0,
                },
            ],
        )
    }

    #[test]
    fn space_basic_accessors() {
        let s = video_space();
        assert_eq!(s.len(), 4);
        assert_eq!(s.full(), 3);
        assert_eq!(s.level(0).name, "Premiere-C+half-window");
        assert_eq!(s.level(s.full()).data_ratio, 1.0);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "must have levels")]
    fn empty_space_rejected() {
        let _ = FidelitySpace::new("x", vec![]);
    }

    #[test]
    #[should_panic(expected = "top level must be full fidelity")]
    fn top_level_must_be_full() {
        let _ = FidelitySpace::new(
            "x",
            vec![FidelityLevel {
                name: "half",
                data_ratio: 0.5,
                quality: 0.5,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "invalid data ratio")]
    fn bad_ratio_rejected() {
        let _ = FidelitySpace::new(
            "x",
            vec![FidelityLevel {
                name: "zero",
                data_ratio: 0.0,
                quality: 1.0,
            }],
        );
    }
}
