//! Wardens: type-specific fidelity managers.
//!
//! "Code components called wardens encapsulate type-specific
//! functionality. There is one warden for each data type in the system."
//! A warden knows the fidelity space of its data type and how to translate
//! a level into concrete request annotations (the map warden annotates
//! fetches with filter/crop settings; the web warden with a JPEG quality).
//! The viceroy holds a registry of wardens keyed by data type.

use std::collections::BTreeMap;

use crate::fidelity::FidelitySpace;

/// A type-specific fidelity manager.
pub trait Warden {
    /// The data type this warden manages (unique per registry).
    fn data_type(&self) -> &'static str;

    /// The fidelity space for this type.
    fn space(&self) -> &FidelitySpace;

    /// Renders the request annotation for a level — the string a server
    /// sees attached to a fetch (e.g. `"filter=minor-roads;crop=1"`).
    fn annotate(&self, level: usize) -> String;
}

/// A registry of wardens, one per data type.
#[derive(Default)]
pub struct WardenRegistry {
    wardens: BTreeMap<&'static str, Box<dyn Warden>>,
}

impl std::fmt::Debug for WardenRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WardenRegistry")
            .field("len", &self.wardens.len())
            .finish_non_exhaustive()
    }
}

impl WardenRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a warden.
    ///
    /// # Panics
    ///
    /// Panics if a warden for the same data type is already registered —
    /// the paper's design has exactly one warden per type.
    pub fn register(&mut self, warden: Box<dyn Warden>) {
        let ty = warden.data_type();
        assert!(
            self.wardens.insert(ty, warden).is_none(),
            "duplicate warden for data type {ty:?}"
        );
    }

    /// Looks up the warden for a data type.
    pub fn get(&self, data_type: &str) -> Option<&dyn Warden> {
        self.wardens.get(data_type).map(|b| b.as_ref())
    }

    /// Registered data types, sorted.
    pub fn data_types(&self) -> Vec<&'static str> {
        self.wardens.keys().copied().collect()
    }

    /// Number of registered wardens.
    pub fn len(&self) -> usize {
        self.wardens.len()
    }

    /// True if no wardens are registered.
    pub fn is_empty(&self) -> bool {
        self.wardens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::FidelityLevel;

    struct TestWarden {
        ty: &'static str,
        space: FidelitySpace,
    }

    impl TestWarden {
        fn new(ty: &'static str) -> Self {
            TestWarden {
                ty,
                space: FidelitySpace::new(
                    ty,
                    vec![
                        FidelityLevel {
                            name: "low",
                            data_ratio: 0.5,
                            quality: 0.5,
                        },
                        FidelityLevel {
                            name: "full",
                            data_ratio: 1.0,
                            quality: 1.0,
                        },
                    ],
                ),
            }
        }
    }

    impl Warden for TestWarden {
        fn data_type(&self) -> &'static str {
            self.ty
        }
        fn space(&self) -> &FidelitySpace {
            &self.space
        }
        fn annotate(&self, level: usize) -> String {
            format!("{}={}", self.ty, self.space.level(level).name)
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = WardenRegistry::new();
        reg.register(Box::new(TestWarden::new("video")));
        reg.register(Box::new(TestWarden::new("map")));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.data_types(), vec!["map", "video"]);
        let w = reg.get("video").unwrap();
        assert_eq!(w.annotate(0), "video=low");
        assert!(reg.get("speech").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate warden")]
    fn duplicate_type_rejected() {
        let mut reg = WardenRegistry::new();
        reg.register(Box::new(TestWarden::new("video")));
        reg.register(Box::new(TestWarden::new("video")));
    }

    #[test]
    fn empty_registry() {
        let reg = WardenRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
    }
}
