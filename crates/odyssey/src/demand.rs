//! Energy-demand prediction (Section 5.1.2).
//!
//! "To predict future energy demand, Odyssey relies on smoothed
//! observations of present and past power usage. We use an exponential
//! smoothing function of the form `new = (1-α)·this_sample + α·old`,
//! where α is ... set so that the half-life of the decay function is 10%
//! of the time remaining until the goal." Predicted demand is the smoothed
//! power multiplied by the time remaining.
//!
//! The half-life tie to time-remaining is the agility/stability dial: far
//! from the goal α is large (stable; transients ignored), close to the
//! goal α shrinks (agile; the margin for error is small).

use simcore::SimDuration;

/// Exponential smoother with a time-remaining-scaled half-life.
#[derive(Clone, Copy, Debug)]
pub struct Smoother {
    /// Half-life as a fraction of time remaining (paper: 0.10).
    half_life_frac: f64,
    /// Sample period, seconds.
    period_s: f64,
    value: Option<f64>,
}

impl Smoother {
    /// Creates a smoother.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(half_life_frac: f64, period: SimDuration) -> Self {
        assert!(
            half_life_frac.is_finite() && half_life_frac > 0.0,
            "invalid half-life fraction: {half_life_frac}"
        );
        let period_s = period.as_secs_f64();
        assert!(period_s > 0.0, "smoothing period must be positive");
        Smoother {
            half_life_frac,
            period_s,
            value: None,
        }
    }

    /// The α used at a given time-remaining: `0.5^(period / half_life)`.
    ///
    /// The half-life is floored at one sample period so that α never
    /// collapses to 0 at the goal boundary.
    pub fn alpha(&self, remaining_s: f64) -> f64 {
        let half_life = (self.half_life_frac * remaining_s.max(0.0)).max(self.period_s);
        // exp2, not 0.5.powf: LLVM rewrites constant-base pow into exp2
        // in optimized builds only, and the two differ in the last ulp
        // for some arguments — calling exp2 directly keeps debug and
        // release runs bit-identical (the golden traces depend on it).
        f64::exp2(-(self.period_s / half_life))
    }

    /// Folds in a power sample taken with `remaining_s` seconds to the
    /// goal; returns the new smoothed value.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative samples.
    pub fn update(&mut self, sample_w: f64, remaining_s: f64) -> f64 {
        assert!(
            sample_w.is_finite() && sample_w >= 0.0,
            "invalid power sample: {sample_w}"
        );
        let new = match self.value {
            None => sample_w,
            Some(old) => {
                let a = self.alpha(remaining_s);
                (1.0 - a) * sample_w + a * old
            }
        };
        self.value = Some(new);
        new
    }

    /// Current smoothed power, W.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Encodes the smoothed value (the parameters are construction-time)
    /// into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_opt_f64(self.value);
    }

    /// Restores the state written by [`Self::freeze_into`].
    pub fn thaw_from(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        self.value = r.take_opt_f64()?;
        Ok(())
    }
}

/// Predicted future energy demand: smoothed power times time remaining.
pub fn predicted_demand_j(smoothed_w: f64, remaining_s: f64) -> f64 {
    smoothed_w * remaining_s.max(0.0)
}

/// One application's standing demand declaration.
#[derive(Clone, Debug, PartialEq)]
struct DemandEntry {
    /// Declared sustained power at each fidelity level, W, index 0 =
    /// lowest fidelity.
    declared_w: Vec<f64>,
    /// The fidelity level the application currently claims to run at.
    claimed_level: usize,
    /// False once the entry has been released (app exited or was
    /// quarantined); a released entry no longer contributes demand.
    active: bool,
}

/// The viceroy's demand ledger: per-application declared power by fidelity
/// level, keyed by process index.
///
/// Declarations enter when an application registers with the viceroy and
/// must leave when it does — historically an app that crashed mid-operation
/// never issued the final downcall, so its declaration leaked and the
/// viceroy kept budgeting supply for a corpse. [`DemandLedger::release`] is
/// the explicit exit; [`DemandLedger::leaked`] audits for entries that
/// outlived their process, and the supervisor garbage-collects them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DemandLedger {
    entries: std::collections::BTreeMap<usize, DemandEntry>,
}

impl DemandLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        DemandLedger::default()
    }

    /// Registers (or replaces) a declaration for process `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `declared_w` is empty, contains a non-finite or negative
    /// value, or `claimed_level` is out of range.
    pub fn declare(&mut self, idx: usize, declared_w: Vec<f64>, claimed_level: usize) {
        assert!(!declared_w.is_empty(), "empty demand declaration");
        assert!(
            declared_w.iter().all(|w| w.is_finite() && *w >= 0.0),
            "invalid declared power: {declared_w:?}"
        );
        assert!(
            claimed_level < declared_w.len(),
            "claimed level {claimed_level} out of range (levels: {})",
            declared_w.len()
        );
        self.entries.insert(
            idx,
            DemandEntry {
                declared_w,
                claimed_level,
                active: true,
            },
        );
    }

    /// Updates the claimed fidelity level for `idx`. Returns `false` when
    /// the process has no active entry or the level is out of range.
    pub fn set_claimed_level(&mut self, idx: usize, level: usize) -> bool {
        match self.entries.get_mut(&idx) {
            Some(e) if e.active && level < e.declared_w.len() => {
                e.claimed_level = level;
                true
            }
            _ => false,
        }
    }

    /// Releases the declaration for `idx` (app exit, crash GC, or
    /// quarantine). Returns the watts freed, or `None` if there was no
    /// active entry — calling it twice is a no-op, not a double-free.
    pub fn release(&mut self, idx: usize) -> Option<f64> {
        match self.entries.get_mut(&idx) {
            Some(e) if e.active => {
                e.active = false;
                Some(e.declared_w[e.claimed_level])
            }
            _ => None,
        }
    }

    /// Re-activates a released entry at `level` (supervisor restart path).
    /// Returns `false` if the process was never declared, is still active,
    /// or `level` is out of range.
    pub fn reinstate(&mut self, idx: usize, level: usize) -> bool {
        match self.entries.get_mut(&idx) {
            Some(e) if !e.active && level < e.declared_w.len() => {
                e.active = true;
                e.claimed_level = level;
                true
            }
            _ => false,
        }
    }

    /// Declared power for `idx` at its claimed level, W; `None` when
    /// absent or released.
    pub fn declared_w(&self, idx: usize) -> Option<f64> {
        self.entries
            .get(&idx)
            .filter(|e| e.active)
            .map(|e| e.declared_w[e.claimed_level])
    }

    /// Claimed fidelity level for `idx`; `None` when absent or released.
    pub fn claimed_level(&self, idx: usize) -> Option<usize> {
        self.entries
            .get(&idx)
            .filter(|e| e.active)
            .map(|e| e.claimed_level)
    }

    /// True while `idx` holds an active declaration.
    pub fn is_active(&self, idx: usize) -> bool {
        self.entries.get(&idx).is_some_and(|e| e.active)
    }

    /// Sum of declared power over all active entries, W.
    pub fn total_declared_w(&self) -> f64 {
        self.entries
            .values()
            .filter(|e| e.active)
            .map(|e| e.declared_w[e.claimed_level])
            .sum()
    }

    /// Encodes the full ledger into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_usize(self.entries.len());
        for (idx, e) in &self.entries {
            w.put_usize(*idx);
            w.put_usize(e.declared_w.len());
            for power in &e.declared_w {
                w.put_f64(*power);
            }
            w.put_usize(e.claimed_level);
            w.put_bool(e.active);
        }
    }

    /// Decodes a ledger written by [`Self::freeze_into`].
    pub fn thaw_from(r: &mut simcore::SnapshotReader<'_>) -> Result<Self, simcore::SnapshotError> {
        let n = r.take_usize()?;
        let mut entries = std::collections::BTreeMap::new();
        for _ in 0..n {
            let idx = r.take_usize()?;
            let levels = r.take_usize()?;
            if levels == 0 {
                return Err(simcore::SnapshotError::Corrupt("empty demand declaration"));
            }
            let mut declared_w = Vec::with_capacity(levels.min(1024));
            for _ in 0..levels {
                let power = r.take_f64()?;
                if !power.is_finite() || power < 0.0 {
                    return Err(simcore::SnapshotError::Corrupt("declared power"));
                }
                declared_w.push(power);
            }
            let claimed_level = r.take_usize()?;
            if claimed_level >= declared_w.len() {
                return Err(simcore::SnapshotError::Corrupt("claimed level"));
            }
            let active = r.take_bool()?;
            if entries
                .insert(
                    idx,
                    DemandEntry {
                        declared_w,
                        claimed_level,
                        active,
                    },
                )
                .is_some()
            {
                return Err(simcore::SnapshotError::Corrupt("duplicate demand entry"));
            }
        }
        Ok(DemandLedger { entries })
    }

    /// Audit: indices whose entries are still active even though the
    /// process is done — declarations leaked by apps that died without the
    /// final downcall. `done` reports whether each process index has
    /// terminated.
    pub fn leaked(&self, done: impl Fn(usize) -> bool) -> Vec<usize> {
        self.entries
            .iter()
            .filter(|(idx, e)| e.active && done(**idx))
            .map(|(idx, _)| *idx)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoother(frac: f64) -> Smoother {
        Smoother::new(frac, SimDuration::from_millis(100))
    }

    #[test]
    fn first_sample_is_taken_verbatim() {
        let mut s = smoother(0.10);
        assert_eq!(s.update(7.5, 1000.0), 7.5);
        assert_eq!(s.value(), Some(7.5));
    }

    #[test]
    fn half_life_semantics() {
        // With remaining = 1000 s and frac = 0.10, the half-life is 100 s.
        // Feed a step from 10 W to 0 W: after 100 s (1000 samples) the
        // smoothed value should be half the step.
        let mut s = smoother(0.10);
        s.update(10.0, 1000.0);
        let mut v = 10.0;
        for _ in 0..1000 {
            v = s.update(0.0, 1000.0);
        }
        assert!((v - 5.0).abs() < 0.05, "after one half-life: {v}");
    }

    #[test]
    fn agility_increases_as_goal_nears() {
        // α must shrink with remaining time: closer goal → more agile.
        let s = smoother(0.10);
        let far = s.alpha(10_000.0);
        let near = s.alpha(30.0);
        assert!(far > near, "far {far} near {near}");
        assert!(far > 0.99);
        assert!(near < 0.98);
    }

    #[test]
    fn alpha_is_floored_at_goal() {
        let s = smoother(0.10);
        let a = s.alpha(0.0);
        assert!((a - 0.5).abs() < 1e-12, "α at zero remaining: {a}");
    }

    #[test]
    fn smaller_half_life_fraction_is_more_agile() {
        // Figure 21 explores 1%, 5%, 10%, 15% half-lives.
        let unstable = smoother(0.01).alpha(1000.0);
        let stable = smoother(0.15).alpha(1000.0);
        assert!(unstable < stable);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut s = smoother(0.10);
        for _ in 0..5000 {
            s.update(8.2, 500.0);
        }
        assert!((s.value().unwrap() - 8.2).abs() < 1e-9);
    }

    #[test]
    fn demand_is_power_times_remaining() {
        assert_eq!(predicted_demand_j(10.0, 600.0), 6000.0);
        assert_eq!(predicted_demand_j(10.0, -5.0), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut s = smoother(0.10);
        s.update(5.0, 100.0);
        s.reset();
        assert_eq!(s.value(), None);
        assert_eq!(s.update(1.0, 100.0), 1.0);
    }

    #[test]
    fn ledger_tracks_claimed_level() {
        let mut l = DemandLedger::new();
        l.declare(0, vec![1.0, 2.0, 4.0], 2);
        assert_eq!(l.declared_w(0), Some(4.0));
        assert!(l.set_claimed_level(0, 0));
        assert_eq!(l.declared_w(0), Some(1.0));
        assert!(!l.set_claimed_level(0, 3));
        assert!(!l.set_claimed_level(9, 0));
    }

    #[test]
    fn release_frees_demand_exactly_once() {
        let mut l = DemandLedger::new();
        l.declare(0, vec![2.0, 5.0], 1);
        l.declare(1, vec![3.0], 0);
        assert!((l.total_declared_w() - 8.0).abs() < 1e-12);
        assert_eq!(l.release(0), Some(5.0));
        assert!((l.total_declared_w() - 3.0).abs() < 1e-12);
        // Double release is a no-op, not a double-free.
        assert_eq!(l.release(0), None);
        assert!(!l.is_active(0));
        assert!(l.is_active(1));
    }

    /// Regression test for the demand leak: an app that dies without the
    /// final downcall leaves an active entry behind, the audit finds it,
    /// and releasing it restores the budget.
    #[test]
    fn crashed_app_without_release_is_a_leak_until_collected() {
        let mut l = DemandLedger::new();
        l.declare(0, vec![2.0], 0);
        l.declare(1, vec![6.0], 0);
        let done = |idx: usize| idx == 1; // process 1 crashed
        assert_eq!(l.leaked(done), vec![1]);
        assert!((l.total_declared_w() - 8.0).abs() < 1e-12);
        assert_eq!(l.release(1), Some(6.0));
        assert!(l.leaked(done).is_empty());
        assert!((l.total_declared_w() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reinstate_reactivates_at_recovery_level() {
        let mut l = DemandLedger::new();
        l.declare(0, vec![1.0, 3.0], 1);
        assert!(!l.reinstate(0, 0), "active entries cannot be reinstated");
        l.release(0);
        assert!(!l.reinstate(0, 5), "out-of-range level rejected");
        assert!(l.reinstate(0, 0));
        assert_eq!(l.declared_w(0), Some(1.0));
        assert_eq!(l.claimed_level(0), Some(0));
    }
}
