//! Energy-demand prediction (Section 5.1.2).
//!
//! "To predict future energy demand, Odyssey relies on smoothed
//! observations of present and past power usage. We use an exponential
//! smoothing function of the form `new = (1-α)·this_sample + α·old`,
//! where α is ... set so that the half-life of the decay function is 10%
//! of the time remaining until the goal." Predicted demand is the smoothed
//! power multiplied by the time remaining.
//!
//! The half-life tie to time-remaining is the agility/stability dial: far
//! from the goal α is large (stable; transients ignored), close to the
//! goal α shrinks (agile; the margin for error is small).

use simcore::SimDuration;

/// Exponential smoother with a time-remaining-scaled half-life.
#[derive(Clone, Copy, Debug)]
pub struct Smoother {
    /// Half-life as a fraction of time remaining (paper: 0.10).
    half_life_frac: f64,
    /// Sample period, seconds.
    period_s: f64,
    value: Option<f64>,
}

impl Smoother {
    /// Creates a smoother.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(half_life_frac: f64, period: SimDuration) -> Self {
        assert!(
            half_life_frac.is_finite() && half_life_frac > 0.0,
            "invalid half-life fraction: {half_life_frac}"
        );
        let period_s = period.as_secs_f64();
        assert!(period_s > 0.0, "smoothing period must be positive");
        Smoother {
            half_life_frac,
            period_s,
            value: None,
        }
    }

    /// The α used at a given time-remaining: `0.5^(period / half_life)`.
    ///
    /// The half-life is floored at one sample period so that α never
    /// collapses to 0 at the goal boundary.
    pub fn alpha(&self, remaining_s: f64) -> f64 {
        let half_life = (self.half_life_frac * remaining_s.max(0.0)).max(self.period_s);
        0.5f64.powf(self.period_s / half_life)
    }

    /// Folds in a power sample taken with `remaining_s` seconds to the
    /// goal; returns the new smoothed value.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or negative samples.
    pub fn update(&mut self, sample_w: f64, remaining_s: f64) -> f64 {
        assert!(
            sample_w.is_finite() && sample_w >= 0.0,
            "invalid power sample: {sample_w}"
        );
        let new = match self.value {
            None => sample_w,
            Some(old) => {
                let a = self.alpha(remaining_s);
                (1.0 - a) * sample_w + a * old
            }
        };
        self.value = Some(new);
        new
    }

    /// Current smoothed power, W.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Clears the state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Predicted future energy demand: smoothed power times time remaining.
pub fn predicted_demand_j(smoothed_w: f64, remaining_s: f64) -> f64 {
    smoothed_w * remaining_s.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoother(frac: f64) -> Smoother {
        Smoother::new(frac, SimDuration::from_millis(100))
    }

    #[test]
    fn first_sample_is_taken_verbatim() {
        let mut s = smoother(0.10);
        assert_eq!(s.update(7.5, 1000.0), 7.5);
        assert_eq!(s.value(), Some(7.5));
    }

    #[test]
    fn half_life_semantics() {
        // With remaining = 1000 s and frac = 0.10, the half-life is 100 s.
        // Feed a step from 10 W to 0 W: after 100 s (1000 samples) the
        // smoothed value should be half the step.
        let mut s = smoother(0.10);
        s.update(10.0, 1000.0);
        let mut v = 10.0;
        for _ in 0..1000 {
            v = s.update(0.0, 1000.0);
        }
        assert!((v - 5.0).abs() < 0.05, "after one half-life: {v}");
    }

    #[test]
    fn agility_increases_as_goal_nears() {
        // α must shrink with remaining time: closer goal → more agile.
        let s = smoother(0.10);
        let far = s.alpha(10_000.0);
        let near = s.alpha(30.0);
        assert!(far > near, "far {far} near {near}");
        assert!(far > 0.99);
        assert!(near < 0.98);
    }

    #[test]
    fn alpha_is_floored_at_goal() {
        let s = smoother(0.10);
        let a = s.alpha(0.0);
        assert!((a - 0.5).abs() < 1e-12, "α at zero remaining: {a}");
    }

    #[test]
    fn smaller_half_life_fraction_is_more_agile() {
        // Figure 21 explores 1%, 5%, 10%, 15% half-lives.
        let unstable = smoother(0.01).alpha(1000.0);
        let stable = smoother(0.15).alpha(1000.0);
        assert!(unstable < stable);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut s = smoother(0.10);
        for _ in 0..5000 {
            s.update(8.2, 500.0);
        }
        assert!((s.value().unwrap() - 8.2).abs() < 1e-9);
    }

    #[test]
    fn demand_is_power_times_remaining() {
        assert_eq!(predicted_demand_j(10.0, 600.0), 6000.0);
        assert_eq!(predicted_demand_j(10.0, -5.0), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut s = smoother(0.10);
        s.update(5.0, 100.0);
        s.reset();
        assert_eq!(s.value(), None);
        assert_eq!(s.update(1.0, 100.0), 1.0);
    }
}
