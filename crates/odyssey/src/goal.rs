//! Goal-directed energy adaptation (Section 5).
//!
//! The user supplies an initial energy value and a desired duration.
//! Twice a second, Odyssey compares residual energy against predicted
//! demand (smoothed power × time remaining) and issues fidelity upcalls:
//!
//! - demand exceeds supply → degrade the lowest-priority application that
//!   still can; if none can, the duration is *infeasible* and the user is
//!   alerted;
//! - supply exceeds demand by more than the hysteresis margin (5% of
//!   residual energy, the *variable* component, plus 1% of initial energy,
//!   the *constant* component) → upgrade the highest-priority degraded
//!   application, capped at one improvement per 15 seconds.
//!
//! Power is observed with the on-line PowerScope meter every 100 ms and
//! smoothed with a half-life of 10% of the time remaining (Section 5.1.2),
//! trading stability far from the goal for agility near it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use machine::{AdaptDirection, ControlHook, MachineView};
use powerscope::{FaultyEnergySensor, MeterFaultPlan, OnlinePowerMeter};
use simcore::{SimDuration, SimTime, TimeSeries, TraceEvent};

use crate::demand::{predicted_demand_j, Smoother};
use crate::priority::PriorityTable;

/// Power overhead of deployed energy monitoring, W (Section 5.1.4: "we
/// expect that the total power overhead imposed by our solution will be
/// less than 14 mW — only 0.25% of the background power consumption of
/// our laptop"). Set [`machine::MachineConfig::monitor_overhead_w`] to
/// this when attaching a [`GoalController`].
pub const MONITOR_OVERHEAD_W: f64 = 0.014;

/// Configuration of a goal-directed adaptation run.
#[derive(Clone, Debug)]
pub struct GoalConfig {
    /// Initial energy value given to Odyssey, J.
    pub initial_energy_j: f64,
    /// Desired battery duration (deadline measured from run start).
    pub goal: SimDuration,
    /// Smoothing half-life as a fraction of time remaining (paper: 0.10).
    pub half_life_frac: f64,
    /// Variable hysteresis: fraction of residual energy (paper: 0.05).
    pub hysteresis_supply_frac: f64,
    /// Constant hysteresis: fraction of initial energy (paper: 0.01).
    pub hysteresis_initial_frac: f64,
    /// Minimum spacing between fidelity improvements (paper: 15 s).
    pub upgrade_min_interval: SimDuration,
    /// Power sampling period (paper: 100 ms).
    pub sample_period: SimDuration,
    /// Decision period (paper: twice a second).
    pub decision_period: SimDuration,
    /// No adaptation decisions before this much of the run has elapsed:
    /// the on-line meter needs a few samples before its smoothed power
    /// means anything ("applications are more stable at the beginning").
    pub warmup: SimDuration,
    /// Goal revisions: at each instant, the goal is replaced by a new
    /// total duration (Section 5.4's mid-run extension).
    pub extensions: Vec<(SimTime, SimDuration)>,
    /// Defects of the energy instrument feeding the on-line meter
    /// (dropout, jitter, quantization). Clean by default.
    pub meter_faults: MeterFaultPlan,
    /// Robustness measures for hostile substrates; `None` (the default)
    /// reproduces the paper's controller exactly.
    pub hardening: Option<Hardening>,
}

/// Robustness measures layered onto the paper's controller for deployment
/// on a substrate whose sensors lie.
///
/// Each measure counters one concrete failure mode:
/// - a gauge that *recovers* (noise, drift correction) would otherwise
///   make supply jump upward and trigger spurious upgrades → the
///   controller tracks a **monotone envelope** of gauge readings;
/// - an *optimistic* gauge (the dangerous sign) walks the client into a
///   dead battery → supply is **cross-checked** against
///   `initial energy − metered consumption` and the minimum wins;
/// - a jittering meter yields implausible instantaneous power → samples
///   outside the platform's **physical envelope** are clamped before
///   smoothing;
/// - dropped samples leave the demand prediction **stale** → decisions
///   pause (and are counted) until fresh data arrives, rather than acting
///   on fiction;
/// - a single-sample demand spike must not thrash fidelity → degrades
///   require the deficit to **persist** across consecutive decisions;
/// - the smoothed demand estimate lags real consumption, so a controller
///   that rides `demand == supply` exactly exhausts the battery moments
///   before the deadline → a **budget reserve** is withheld from the
///   supply estimate, leaving headroom for estimation lag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hardening {
    /// Skip decisions when the newest accepted power sample is older
    /// than this.
    pub stale_after: SimDuration,
    /// Physical power envelope `[min, max]` W; accepted samples are
    /// clamped into it before smoothing.
    pub power_clamp_w: (f64, f64),
    /// Consecutive deficit decisions required before degrading.
    pub degrade_persistence: usize,
    /// Cross-check the gauge against metered consumption, taking the
    /// more pessimistic of the two supply estimates.
    pub use_energy_cross_check: bool,
    /// Fraction of the *initial* energy withheld as a constant reserve
    /// against demand-estimation lag. A proportional reserve would decay
    /// with the supply and stop protecting exactly when exhaustion nears.
    pub reserve_frac: f64,
}

impl Hardening {
    /// Defaults sized to the ThinkPad 560X platform: 2 s staleness bound
    /// (20 samples), a 1–30 W envelope bracketing the platform's 3.47 W
    /// floor and ~20 W worst case, 2-decision degrade persistence (1 s),
    /// the energy cross-check on, and a 5% budget reserve.
    pub fn standard() -> Self {
        Hardening {
            stale_after: SimDuration::from_secs(2),
            power_clamp_w: (1.0, 30.0),
            degrade_persistence: 2,
            use_energy_cross_check: true,
            reserve_frac: 0.05,
        }
    }
}

impl GoalConfig {
    /// The paper's parameters for a given supply and duration.
    pub fn paper(initial_energy_j: f64, goal: SimDuration) -> Self {
        GoalConfig {
            initial_energy_j,
            goal,
            half_life_frac: 0.10,
            hysteresis_supply_frac: 0.05,
            hysteresis_initial_frac: 0.01,
            upgrade_min_interval: SimDuration::from_secs(15),
            sample_period: SimDuration::from_millis(100),
            decision_period: SimDuration::from_millis(500),
            warmup: SimDuration::from_secs(10),
            extensions: Vec::new(),
            meter_faults: MeterFaultPlan::clean(),
            hardening: None,
        }
    }

    /// Adds a mid-run goal revision.
    pub fn with_extension(mut self, at: SimTime, new_goal: SimDuration) -> Self {
        self.extensions.push((at, new_goal));
        self.extensions.sort_by_key(|(t, _)| *t);
        self
    }

    /// Degrades the controller's energy instrument.
    pub fn with_meter_faults(mut self, plan: MeterFaultPlan) -> Self {
        self.meter_faults = plan;
        self
    }

    /// Enables robustness measures.
    pub fn with_hardening(mut self, h: Hardening) -> Self {
        self.hardening = Some(h);
        self
    }
}

/// Outcome of a goal-directed run, read from the [`GoalHandle`].
#[derive(Clone, Debug, PartialEq)]
pub struct GoalOutcome {
    /// True if the supply lasted to the (possibly revised) goal.
    pub goal_met: bool,
    /// Decisions where demand exceeded supply but nothing could degrade —
    /// the "alert the user: this duration is infeasible" signal.
    pub infeasible_signals: usize,
    /// Degrade upcalls that changed a fidelity.
    pub degrades: usize,
    /// Upgrade upcalls that changed a fidelity.
    pub upgrades: usize,
    /// Decisions skipped because the power estimate was stale (hardened
    /// controllers only).
    pub stale_decisions: usize,
    /// Instant of the first infeasibility alert, if any was raised.
    pub first_infeasible_at: Option<SimTime>,
}

#[derive(Debug)]
struct Shared {
    supply: TimeSeries,
    demand: TimeSeries,
    goal_met: bool,
    infeasible_signals: usize,
    degrades: usize,
    upgrades: usize,
    stale_decisions: usize,
    first_infeasible_at: Option<SimTime>,
    /// Degrade upcalls that changed nothing although the app claimed it
    /// could degrade, per process index — the supervisor's ignored-upcall
    /// feed.
    rejected_degrades: BTreeMap<usize, usize>,
    /// A live goal revision posted through the handle, applied (and
    /// cleared) at the controller's next tick.
    posted_goal: Option<SimDuration>,
    /// A live budget revision posted through the handle: replaces the
    /// initial energy value at the controller's next tick.
    posted_budget_j: Option<f64>,
}

/// Caller-side handle to inspect a controller after the run. Cloneable so
/// a supervisor can watch the controller's upcall feed live.
#[derive(Clone)]
pub struct GoalHandle {
    shared: Rc<RefCell<Shared>>,
}

impl std::fmt::Debug for GoalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoalHandle").finish_non_exhaustive()
    }
}

impl GoalHandle {
    /// Final outcome.
    pub fn outcome(&self) -> GoalOutcome {
        let s = self.shared.borrow();
        GoalOutcome {
            goal_met: s.goal_met,
            infeasible_signals: s.infeasible_signals,
            degrades: s.degrades,
            upgrades: s.upgrades,
            stale_decisions: s.stale_decisions,
            first_infeasible_at: s.first_infeasible_at,
        }
    }

    /// Residual-energy series sampled at each decision (Figure 19 top).
    pub fn supply_series(&self) -> TimeSeries {
        self.shared.borrow().supply.clone()
    }

    /// Predicted-demand series sampled at each decision (Figure 19 top).
    pub fn demand_series(&self) -> TimeSeries {
        self.shared.borrow().demand.clone()
    }

    /// Degrade upcalls to process index `idx` that changed nothing even
    /// though its fidelity view said it could degrade — the signature of
    /// an app ignoring upcalls.
    pub fn rejected_degrades_of(&self, idx: usize) -> usize {
        self.shared
            .borrow()
            .rejected_degrades
            .get(&idx)
            .copied()
            .unwrap_or(0)
    }

    /// Total rejected degrade upcalls across all processes.
    pub fn total_rejected_degrades(&self) -> usize {
        self.shared.borrow().rejected_degrades.values().sum()
    }

    /// Posts a live goal revision: at the controller's next tick the
    /// deadline becomes `ZERO + new_goal` (the dynamic form of Section
    /// 5.4's longer-duration goals). The last post before the tick wins.
    /// Callers validate against elapsed time; the controller applies
    /// whatever was posted.
    pub fn post_goal_revision(&self, new_goal: SimDuration) {
        self.shared.borrow_mut().posted_goal = Some(new_goal);
    }

    /// Posts a live budget revision: at the controller's next tick the
    /// initial energy value — the base of the hysteresis constant, the
    /// budget reserve, and the energy cross-check — becomes `budget_j`.
    /// The last post before the tick wins. Callers validate positivity
    /// and finiteness; the controller applies whatever was posted.
    pub fn post_budget_revision_j(&self, budget_j: f64) {
        self.shared.borrow_mut().posted_budget_j = Some(budget_j);
    }
}

/// The goal-directed controller; attach with
/// [`machine::Machine::add_hook`] at [`GoalConfig::sample_period`].
///
/// # Examples
///
/// Make a 150 J battery last 20 seconds of a heavier workload:
///
/// ```
/// use hw560x::EnergySource;
/// use machine::workload::ScriptedWorkload;
/// use machine::{Machine, MachineConfig};
/// use odyssey::{GoalConfig, GoalController, PriorityTable};
/// use simcore::{SimDuration, SimTime};
///
/// let mut m = Machine::new(MachineConfig {
///     source: EnergySource::battery(150.0),
///     ..Default::default()
/// });
/// let pid = m.add_process(Box::new(ScriptedWorkload::idle_for(
///     "app",
///     SimDuration::from_secs(60),
/// )));
/// let mut cfg = GoalConfig::paper(150.0, SimDuration::from_secs(20));
/// cfg.warmup = SimDuration::from_secs(1);
/// let period = cfg.sample_period;
/// let (handle, controller) = GoalController::new(cfg, PriorityTable::new(vec![pid]));
/// m.add_hook(period, controller);
/// let report = m.run_until(SimTime::from_secs(60));
/// assert!(handle.outcome().goal_met);
/// assert!((report.duration_s() - 20.0).abs() < 1.0);
/// ```
pub struct GoalController {
    cfg: GoalConfig,
    priorities: PriorityTable,
    deadline: SimTime,
    next_extension: usize,
    meter: OnlinePowerMeter,
    smoother: Smoother,
    last_decision: Option<SimTime>,
    last_upgrade: Option<SimTime>,
    /// Instrument defects between the ledger and the meter.
    sensor: FaultyEnergySensor,
    /// Instant of the last accepted (non-dropped) power sample.
    last_sample_at: Option<SimTime>,
    /// Last accepted cumulative-energy reading, J (for the cross-check).
    last_metered_j: f64,
    /// Monotone non-increasing envelope of gauge readings (hardened).
    supply_floor: f64,
    /// Consecutive deficit decisions (hardened degrade persistence).
    deficit_streak: usize,
    shared: Rc<RefCell<Shared>>,
}

impl std::fmt::Debug for GoalController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoalController")
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl GoalController {
    /// Creates a controller and its inspection handle.
    pub fn new(cfg: GoalConfig, priorities: PriorityTable) -> (GoalHandle, Box<GoalController>) {
        let shared = Rc::new(RefCell::new(Shared {
            supply: TimeSeries::new("supply"),
            demand: TimeSeries::new("demand"),
            goal_met: false,
            infeasible_signals: 0,
            degrades: 0,
            upgrades: 0,
            stale_decisions: 0,
            first_infeasible_at: None,
            rejected_degrades: BTreeMap::new(),
            posted_goal: None,
            posted_budget_j: None,
        }));
        let deadline = SimTime::ZERO + cfg.goal;
        let controller = GoalController {
            smoother: Smoother::new(cfg.half_life_frac, cfg.sample_period),
            meter: OnlinePowerMeter::new(),
            deadline,
            next_extension: 0,
            priorities,
            last_decision: None,
            last_upgrade: None,
            sensor: FaultyEnergySensor::new(cfg.meter_faults),
            last_sample_at: None,
            last_metered_j: 0.0,
            supply_floor: f64::INFINITY,
            deficit_streak: 0,
            shared: shared.clone(),
            cfg,
        };
        (GoalHandle { shared }, Box::new(controller))
    }

    fn apply_extensions(&mut self, now: SimTime) {
        while let Some((at, new_goal)) = self.cfg.extensions.get(self.next_extension).copied() {
            if at > now {
                break;
            }
            self.deadline = SimTime::ZERO + new_goal;
            self.next_extension += 1;
        }
        // Live revisions posted through the handle override the static
        // extension schedule: they were posted later.
        let (goal, budget) = {
            let mut s = self.shared.borrow_mut();
            (s.posted_goal.take(), s.posted_budget_j.take())
        };
        if let Some(new_goal) = goal {
            self.deadline = SimTime::ZERO + new_goal;
        }
        if let Some(budget_j) = budget {
            self.cfg.initial_energy_j = budget_j;
        }
    }

    /// The controller's best estimate of remaining supply. The paper's
    /// controller trusts the gauge outright; a hardened one assumes the
    /// gauge may lie high and takes the most pessimistic of (a) the
    /// monotone envelope of gauge readings — a real battery never regains
    /// energy, so upward jumps are sensor artifacts — and (b) the initial
    /// energy value minus everything the on-line meter has seen consumed,
    /// then withholds the budget reserve from the result.
    fn estimate_supply(&mut self, gauge_j: f64) -> f64 {
        let Some(h) = self.cfg.hardening else {
            return gauge_j;
        };
        if gauge_j.is_finite() {
            self.supply_floor = self.supply_floor.min(gauge_j);
        }
        let mut supply = self.supply_floor;
        if h.use_energy_cross_check {
            supply = supply.min((self.cfg.initial_energy_j - self.last_metered_j).max(0.0));
        }
        if supply.is_finite() {
            supply = (supply - h.reserve_frac * self.cfg.initial_energy_j).max(0.0);
        }
        supply
    }

    fn decide(&mut self, now: SimTime, view: &mut MachineView<'_>) {
        let Some(power) = self.smoother.value() else {
            return;
        };
        if let Some(h) = self.cfg.hardening {
            let fresh = self
                .last_sample_at
                .is_some_and(|t| now.saturating_since(t) <= h.stale_after);
            if !fresh {
                // The power estimate is fiction; don't act on it.
                self.shared.borrow_mut().stale_decisions += 1;
                return;
            }
        }
        let supply = self.estimate_supply(view.residual_j());
        let remaining_s = self.deadline.saturating_since(now).as_secs_f64();
        let demand = predicted_demand_j(power, remaining_s);
        {
            let mut s = self.shared.borrow_mut();
            s.supply.record(now, supply);
            s.demand.record(now, demand);
        }
        view.emit_trace(TraceEvent::GoalBudget {
            supply_j: supply,
            demand_j: demand,
        });
        let procs = view.processes();
        if demand > supply {
            self.deficit_streak += 1;
            if let Some(h) = self.cfg.hardening {
                if self.deficit_streak < h.degrade_persistence {
                    return;
                }
            }
            for pid in self.priorities.degrade_order() {
                let info = procs[pid.index()];
                if info.done || info.suspended || !info.fidelity.can_degrade() {
                    continue;
                }
                if view.upcall(pid, AdaptDirection::Degrade) {
                    self.shared.borrow_mut().degrades += 1;
                    return;
                }
                // The app claims it can degrade yet the upcall changed
                // nothing. Publish the rejection for the supervisor and
                // fall through to the next candidate.
                *self
                    .shared
                    .borrow_mut()
                    .rejected_degrades
                    .entry(pid.index())
                    .or_insert(0) += 1;
            }
            // Every application is already at lowest fidelity: the goal is
            // infeasible; alert the user.
            view.emit_trace(TraceEvent::GoalInfeasible);
            let mut s = self.shared.borrow_mut();
            s.infeasible_signals += 1;
            s.first_infeasible_at.get_or_insert(now);
        } else {
            self.deficit_streak = 0;
            let hyst = self.cfg.hysteresis_supply_frac * supply
                + self.cfg.hysteresis_initial_frac * self.cfg.initial_energy_j;
            if supply <= demand + hyst {
                return;
            }
            if let Some(last) = self.last_upgrade {
                if now.saturating_since(last) < self.cfg.upgrade_min_interval {
                    return;
                }
            }
            for pid in self.priorities.upgrade_order() {
                let info = procs[pid.index()];
                if info.done || info.suspended || !info.fidelity.can_upgrade() {
                    continue;
                }
                if view.upcall(pid, AdaptDirection::Upgrade) {
                    self.shared.borrow_mut().upgrades += 1;
                    self.last_upgrade = Some(now);
                    return;
                }
            }
        }
    }
}

impl ControlHook for GoalController {
    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        // The only mutable piece of cfg: a posted budget revision
        // replaces the initial energy value.
        w.put_f64(self.cfg.initial_energy_j);
        w.put_time(self.deadline);
        w.put_usize(self.next_extension);
        self.meter.freeze_into(w);
        self.smoother.freeze_into(w);
        w.put_opt_time(self.last_decision);
        w.put_opt_time(self.last_upgrade);
        self.sensor.freeze_into(w);
        w.put_opt_time(self.last_sample_at);
        w.put_f64(self.last_metered_j);
        w.put_f64(self.supply_floor);
        w.put_usize(self.deficit_streak);
        let s = self.shared.borrow();
        s.supply.freeze_into(w);
        s.demand.freeze_into(w);
        w.put_bool(s.goal_met);
        w.put_usize(s.infeasible_signals);
        w.put_usize(s.degrades);
        w.put_usize(s.upgrades);
        w.put_usize(s.stale_decisions);
        w.put_opt_time(s.first_infeasible_at);
        w.put_usize(s.rejected_degrades.len());
        for (idx, count) in &s.rejected_degrades {
            w.put_usize(*idx);
            w.put_usize(*count);
        }
        match s.posted_goal {
            None => w.put_u64(0),
            Some(goal) => {
                w.put_u64(1);
                w.put_duration(goal);
            }
        }
        w.put_opt_f64(s.posted_budget_j);
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        self.cfg.initial_energy_j = r.take_f64()?;
        self.deadline = r.take_time()?;
        let next_extension = r.take_usize()?;
        if next_extension > self.cfg.extensions.len() {
            return Err(simcore::SnapshotError::Corrupt("extension cursor"));
        }
        self.next_extension = next_extension;
        self.meter.thaw_from(r)?;
        self.smoother.thaw_from(r)?;
        self.last_decision = r.take_opt_time()?;
        self.last_upgrade = r.take_opt_time()?;
        self.sensor.thaw_from(r)?;
        self.last_sample_at = r.take_opt_time()?;
        self.last_metered_j = r.take_f64()?;
        self.supply_floor = r.take_f64()?;
        self.deficit_streak = r.take_usize()?;
        let mut s = self.shared.borrow_mut();
        s.supply = simcore::TimeSeries::thaw_from(r)?;
        s.demand = simcore::TimeSeries::thaw_from(r)?;
        s.goal_met = r.take_bool()?;
        s.infeasible_signals = r.take_usize()?;
        s.degrades = r.take_usize()?;
        s.upgrades = r.take_usize()?;
        s.stale_decisions = r.take_usize()?;
        s.first_infeasible_at = r.take_opt_time()?;
        let n = r.take_usize()?;
        s.rejected_degrades.clear();
        for _ in 0..n {
            let idx = r.take_usize()?;
            let count = r.take_usize()?;
            if s.rejected_degrades.insert(idx, count).is_some() {
                return Err(simcore::SnapshotError::Corrupt(
                    "duplicate rejected-degrade entry",
                ));
            }
        }
        s.posted_goal = match r.take_u64()? {
            0 => None,
            1 => Some(r.take_duration()?),
            _ => return Err(simcore::SnapshotError::Corrupt("posted goal tag")),
        };
        s.posted_budget_j = r.take_opt_f64()?;
        Ok(())
    }

    fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
        self.apply_extensions(now);
        // The controller never reads the ledger directly: its cumulative
        // energy passes through the (possibly faulty) instrument, which
        // may drop the sample entirely.
        match self.sensor.observe(view.energy_consumed_j()) {
            Some(metered) => {
                self.last_metered_j = metered;
                if let Some(mut p) = self.meter.update(now, metered) {
                    if let Some(h) = self.cfg.hardening {
                        let raw = p;
                        p = p.clamp(h.power_clamp_w.0, h.power_clamp_w.1);
                        if p != raw {
                            view.emit_trace(TraceEvent::GoalClamp {
                                raw_power_w: raw,
                                power_w: p,
                            });
                        }
                    }
                    let remaining = self.deadline.saturating_since(now).as_secs_f64();
                    self.smoother.update(p, remaining);
                    self.last_sample_at = Some(now);
                }
            }
            None => view.emit_trace(TraceEvent::MeterFault { kind: "dropout" }),
        }
        if now >= self.deadline {
            self.shared.borrow_mut().goal_met = true;
            view.request_stop();
            return;
        }
        if now.saturating_since(SimTime::ZERO) < self.cfg.warmup {
            return;
        }
        let due = match self.last_decision {
            None => true,
            Some(t) => now.saturating_since(t) >= self.cfg.decision_period,
        };
        if due {
            self.last_decision = Some(now);
            self.decide(now, view);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw560x::{DisplayState, EnergySource};
    use machine::workload::ScriptedWorkload;
    use machine::{Activity, FidelityView, Machine, MachineConfig, Step, Workload};
    use simcore::SimTime;

    /// A periodic workload whose duty cycle scales with fidelity level:
    /// level 2 → 90% CPU, level 1 → 45%, level 0 → 10%.
    struct DutyCycle {
        level: usize,
        until: SimTime,
    }

    impl DutyCycle {
        const PERIOD: SimDuration = SimDuration::from_millis(1000);

        fn duty(&self) -> f64 {
            match self.level {
                0 => 0.10,
                1 => 0.45,
                _ => 0.90,
            }
        }
    }

    impl Workload for DutyCycle {
        fn name(&self) -> &'static str {
            "duty"
        }
        fn display_need(&self) -> DisplayState {
            DisplayState::Off
        }
        fn poll(&mut self, now: SimTime) -> Step {
            if now >= self.until {
                return Step::Done;
            }
            // Alternate burst and sleep; the burst length encodes fidelity.
            let phase = now.as_micros() % Self::PERIOD.as_micros();
            if phase == 0 {
                Step::Run(Activity::Cpu {
                    duration: Self::PERIOD.mul_f64(self.duty()),
                    intensity: 1.0,
                    procedure: "burn",
                })
            } else {
                let next = now + (Self::PERIOD - SimDuration::from_micros(phase));
                Step::Run(Activity::Wait { until: next })
            }
        }
        fn fidelity(&self) -> FidelityView {
            FidelityView::new(self.level, 3)
        }
        fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
            match dir {
                AdaptDirection::Degrade if self.level > 0 => {
                    self.level -= 1;
                    true
                }
                AdaptDirection::Upgrade if self.level < 2 => {
                    self.level += 1;
                    true
                }
                _ => false,
            }
        }
    }

    fn run_goal(
        initial_j: f64,
        goal_s: u64,
        workload_s: u64,
    ) -> (GoalOutcome, machine::RunReport, GoalHandle) {
        // Unit scenarios use tiny batteries that can drain within the
        // default warmup; decide from the first samples instead.
        let mut cfg = GoalConfig::paper(initial_j, SimDuration::from_secs(goal_s));
        cfg.warmup = SimDuration::from_secs(1);
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(initial_j),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(DutyCycle {
            level: 2,
            until: SimTime::from_secs(workload_s),
        }));
        let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
        m.add_hook(cfg.sample_period, hook);
        let report = m.run();
        (handle.outcome(), report, handle)
    }

    /// Rough power at each duty level: base all-off ≈ 3.47 W + duty × 9.5.
    /// Level 2 ≈ 12.2 W, level 0 ≈ 4.5 W.
    #[test]
    fn controller_degrades_to_meet_tight_goal() {
        // 300 s goal with 2000 J: full fidelity needs ~3700 J, lowest
        // ~1350 J — feasible only after degradation.
        let (outcome, report, _h) = run_goal(2000.0, 300, 600);
        assert!(outcome.goal_met, "goal missed: {outcome:?}");
        assert!(!report.exhausted);
        assert!(outcome.degrades >= 1);
        assert!(
            (report.duration_s() - 300.0).abs() < 1.0,
            "stopped at {}",
            report.duration_s()
        );
    }

    /// With abundant energy the controller never needs to degrade.
    #[test]
    fn abundant_energy_keeps_full_fidelity() {
        let (outcome, report, _h) = run_goal(10_000.0, 300, 600);
        assert!(outcome.goal_met);
        assert_eq!(outcome.degrades, 0);
        assert_eq!(report.adaptations_of("duty"), 0);
    }

    /// An infeasible goal is detected and flagged.
    #[test]
    fn infeasible_goal_is_flagged() {
        // 100 J cannot cover 300 s even at lowest fidelity (~4.5 W).
        let (outcome, report, _h) = run_goal(100.0, 300, 600);
        assert!(!outcome.goal_met);
        assert!(report.exhausted);
        assert!(outcome.infeasible_signals > 0, "{outcome:?}");
    }

    /// After degradation, surplus energy triggers paced upgrades.
    #[test]
    fn upgrades_are_rate_capped() {
        // Start scarce so it degrades, then the workload's low draw leaves
        // surplus; upgrades must be ≥ 15 s apart.
        let (outcome, report, _h) = run_goal(2600.0, 400, 800);
        assert!(outcome.goal_met);
        if outcome.upgrades >= 2 {
            let series = &report.fidelity[0];
            let mut ups: Vec<SimTime> = Vec::new();
            let pts = series.points();
            for w in pts.windows(2) {
                if w[1].1 > w[0].1 {
                    ups.push(pts[pts.iter().position(|p| p == &w[1]).unwrap()].0);
                }
            }
            for pair in ups.windows(2) {
                assert!(
                    pair[1].saturating_since(pair[0]) >= SimDuration::from_secs(15),
                    "upgrades too close: {:?}",
                    pair
                );
            }
        }
    }

    /// Supply and demand series are recorded and demand tracks supply.
    #[test]
    fn series_are_recorded() {
        let (outcome, _report, handle) = run_goal(2000.0, 300, 600);
        assert!(outcome.goal_met);
        let supply = handle.supply_series();
        let demand = handle.demand_series();
        assert!(supply.len() > 100);
        assert_eq!(supply.len(), demand.len());
        // Near the goal, demand must track supply to within a few
        // percent of the initial energy.
        let t = SimTime::from_secs(290);
        let s = supply.value_at(t).unwrap();
        let d = demand.value_at(t).unwrap();
        assert!(
            (d - s).abs() / 2000.0 < 0.05,
            "supply {s} demand {d} diverged"
        );
    }

    /// A mid-run extension moves the deadline.
    #[test]
    fn goal_extension_is_applied() {
        let cfg = GoalConfig::paper(4000.0, SimDuration::from_secs(300))
            .with_extension(SimTime::from_secs(100), SimDuration::from_secs(400));
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(4000.0),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(DutyCycle {
            level: 2,
            until: SimTime::from_secs(800),
        }));
        let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
        m.add_hook(cfg.sample_period, hook);
        let report = m.run();
        assert!(handle.outcome().goal_met);
        assert!(
            (report.duration_s() - 400.0).abs() < 1.0,
            "ended at {}",
            report.duration_s()
        );
    }

    /// A goal revision posted through the handle moves the deadline just
    /// like a scheduled extension — the live-reconfiguration seam.
    #[test]
    fn posted_goal_revision_moves_the_deadline() {
        let cfg = GoalConfig::paper(4000.0, SimDuration::from_secs(300));
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(4000.0),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(DutyCycle {
            level: 2,
            until: SimTime::from_secs(800),
        }));
        let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
        m.add_hook(cfg.sample_period, hook);
        // Step the run halfway, post a revision, and continue: the
        // controller must stop at the revised deadline.
        m.run_until(SimTime::from_secs(100));
        handle.post_goal_revision(SimDuration::from_secs(400));
        let report = m.run_until(SimTime::from_secs(800));
        assert!(handle.outcome().goal_met);
        assert!(
            (report.duration_s() - 400.0).abs() < 1.0,
            "ended at {}",
            report.duration_s()
        );
    }

    /// A posted budget revision replaces the initial energy value the
    /// hysteresis constant and reserve are computed from.
    #[test]
    fn posted_budget_revision_is_consumed() {
        let cfg = GoalConfig::paper(2000.0, SimDuration::from_secs(300));
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(2000.0),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(DutyCycle {
            level: 2,
            until: SimTime::from_secs(600),
        }));
        let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
        m.add_hook(cfg.sample_period, hook);
        m.run_until(SimTime::from_secs(50));
        handle.post_budget_revision_j(1500.0);
        let report = m.run_until(SimTime::from_secs(600));
        // The run still terminates deterministically; the revision is
        // consumed (posting again is a fresh request, not an error).
        assert!(handle.outcome().goal_met || report.exhausted);
        handle.post_budget_revision_j(1000.0);
    }

    /// Against a gauge that reads 20% optimistic and drifts higher, the
    /// paper's controller under-degrades and dies early; the hardened
    /// controller's energy cross-check keeps the goal.
    #[test]
    fn hardened_controller_survives_lying_gauge() {
        use hw560x::BatteryGauge;
        use machine::FaultConfig;

        let run = |hardened: bool| {
            let mut cfg = GoalConfig::paper(2000.0, SimDuration::from_secs(300));
            cfg.warmup = SimDuration::from_secs(1);
            if hardened {
                cfg = cfg.with_hardening(Hardening::standard());
            }
            let mut m = Machine::new(MachineConfig {
                source: EnergySource::battery(2000.0),
                faults: FaultConfig {
                    gauge: BatteryGauge::hostile(9, 1.0),
                    ..FaultConfig::clean()
                },
                ..Default::default()
            });
            let pid = m.add_process(Box::new(DutyCycle {
                level: 2,
                until: SimTime::from_secs(600),
            }));
            let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
            m.add_hook(cfg.sample_period, hook);
            let report = m.run();
            (handle.outcome(), report)
        };
        let (naive, naive_report) = run(false);
        let (hard, hard_report) = run(true);
        assert!(hard.goal_met, "hardened missed the goal: {hard:?}");
        assert!(!hard_report.exhausted);
        assert!(
            naive_report.exhausted && !naive.goal_met,
            "naive should die early believing the gauge: {naive:?} ended at {}",
            naive_report.duration_s()
        );
        assert!(naive_report.duration_s() < 295.0);
    }

    /// Heavy meter dropout starves the demand predictor; the hardened
    /// controller pauses (counting stale decisions) instead of panicking
    /// or acting on fiction, and still finishes the run.
    #[test]
    fn dropout_pauses_decisions_without_panic() {
        let mut cfg = GoalConfig::paper(4000.0, SimDuration::from_secs(300))
            .with_meter_faults(MeterFaultPlan {
                seed: 17,
                drop_p: 0.95,
                jitter_j: 0.5,
                quantum_j: 1.0,
            })
            .with_hardening(Hardening::standard());
        cfg.warmup = SimDuration::from_secs(1);
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(4000.0),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(DutyCycle {
            level: 2,
            until: SimTime::from_secs(600),
        }));
        let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
        m.add_hook(cfg.sample_period, hook);
        let report = m.run();
        let outcome = handle.outcome();
        assert!(
            outcome.stale_decisions > 0,
            "95% dropout must produce stale windows: {outcome:?}"
        );
        assert!(report.duration_s() > 290.0);
    }

    /// The controller leaves non-adaptive workloads alone.
    #[test]
    fn fixed_workloads_are_skipped() {
        let mut cfg = GoalConfig::paper(50.0, SimDuration::from_secs(60));
        cfg.warmup = SimDuration::from_secs(1);
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(50.0),
            ..Default::default()
        });
        let pid = m.add_process(Box::new(ScriptedWorkload::idle_for(
            "fixed",
            SimDuration::from_secs(120),
        )));
        let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
        m.add_hook(cfg.sample_period, hook);
        let report = m.run();
        // Nothing can adapt: infeasible signals, exhaustion before goal.
        assert!(report.exhausted);
        let outcome = handle.outcome();
        assert_eq!(outcome.degrades, 0);
        assert!(outcome.infeasible_signals > 0);
    }
}
