//! Fault edge cases on the shared link: degenerate and overlapping
//! windows must leave the fluid model consistent — flows freeze during
//! outages, resume with their bytes intact, and never gain or lose
//! traffic to bookkeeping.

use netsim::{LinkFaultTimeline, SharedLink};
use simcore::fault::{FaultSchedule, FaultWindow};
use simcore::{SimDuration, SimTime};

const CAP: f64 = 2.0e6;

fn secs(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn win(start: u64, end: u64) -> FaultWindow {
    FaultWindow {
        start: secs(start),
        end: secs(end),
    }
}

/// Drives `link` through the timeline's capacity transitions up to
/// `until`, applying each factor as the machine executor would, and
/// returns the completion instant of the last flow to finish.
fn drive(link: &mut SharedLink, timeline: &LinkFaultTimeline, until: SimTime) -> Option<SimTime> {
    let mut at = SimTime::ZERO;
    link.set_rate_factor(at, timeline.capacity_factor_at(at));
    let mut last_done = None;
    loop {
        let next = timeline
            .next_capacity_transition_after(at)
            .filter(|&t| t < until);
        // Process any completion that lands before the next transition.
        while let Some((done, _)) = link.next_completion(at) {
            if done > next.unwrap_or(until) {
                break;
            }
            link.advance(done);
            at = done;
            last_done = Some(done);
        }
        let Some(t) = next else {
            link.advance(until);
            break;
        };
        link.set_rate_factor(t, timeline.capacity_factor_at(t));
        at = t;
    }
    last_done
}

/// A zero-duration outage window is no outage at all: it merges away at
/// schedule construction, and even applying the factor flip at a single
/// instant perturbs nothing.
#[test]
fn zero_duration_outage_is_a_no_op() {
    let timeline = LinkFaultTimeline::scripted(
        FaultSchedule::new(vec![win(10, 10)]),
        FaultSchedule::empty(),
        1.0,
        FaultSchedule::empty(),
        SimDuration::ZERO,
    );
    assert!(timeline.is_clean());
    assert_eq!(timeline.capacity_factor_at(secs(10)), 1.0);
    assert_eq!(timeline.next_capacity_transition_after(SimTime::ZERO), None);

    // An instantaneous down/up flip at one instant leaves the completion
    // of an in-flight transfer exactly where it was.
    let mut link = SharedLink::new(CAP);
    link.start_flow(SimTime::ZERO, 500_000); // 4 Mbit → 2 s.
    link.set_rate_factor(secs(1), 0.0);
    link.set_rate_factor(secs(1), 1.0);
    let (done, _) = link.next_completion(secs(1)).unwrap();
    assert!(
        (done.as_secs_f64() - 2.0).abs() < 1e-6,
        "zero-length outage moved completion to {done}"
    );
}

/// Two outages that meet end-to-start merge into one; a flow frozen
/// across the seam is indistinguishable from a flow frozen by a single
/// window of the combined length, and a redundant mid-outage factor
/// write changes nothing.
#[test]
fn back_to_back_outages_behave_as_one() {
    let merged = FaultSchedule::new(vec![win(10, 20), win(20, 30)]);
    assert_eq!(merged.windows(), &[win(10, 30)]);

    let run = |redundant_write: bool| {
        let mut link = SharedLink::new(CAP);
        link.start_flow(secs(5), 3_750_000); // 30 Mbit → 15 s at full rate.
        link.set_rate_factor(secs(10), 0.0);
        assert!(link.next_completion(secs(10)).is_none());
        if redundant_write {
            // The seam between the two windows: still fully down.
            link.set_rate_factor(secs(20), 0.0);
            assert!(link.next_completion(secs(20)).is_none());
        }
        link.set_rate_factor(secs(30), 1.0);
        assert_eq!(link.active_count(), 1, "flow must survive the outage");
        link.next_completion(secs(30)).unwrap().0
    };
    let with_seam = run(true);
    let without = run(false);
    assert_eq!(with_seam, without);
    // 5 s transferred before the outage, 20 s frozen, 10 s to finish.
    assert!(
        (with_seam.as_secs_f64() - 40.0).abs() < 1e-6,
        "expected completion at 40 s, got {with_seam}"
    );
}

/// A bandwidth dip overlapping an outage: the outage wins while both are
/// active, the dip's tail then throttles the link, and full capacity
/// returns when the dip clears. The flow's bytes are conserved through
/// all three regimes.
#[test]
fn dip_overlapping_outage_freezes_then_resumes_slow() {
    let timeline = LinkFaultTimeline::scripted(
        FaultSchedule::new(vec![win(10, 20)]),
        FaultSchedule::new(vec![win(15, 25)]),
        0.3,
        FaultSchedule::empty(),
        SimDuration::ZERO,
    );
    assert_eq!(timeline.capacity_factor_at(secs(12)), 0.0);
    assert_eq!(
        timeline.capacity_factor_at(secs(17)),
        0.0,
        "an outage must win over a concurrent dip"
    );
    assert_eq!(timeline.capacity_factor_at(secs(22)), 0.3);
    assert_eq!(timeline.capacity_factor_at(secs(26)), 1.0);

    let mut link = SharedLink::new(CAP);
    link.start_flow(SimTime::ZERO, 3_750_000); // 30 Mbit.
    let done = drive(&mut link, &timeline, secs(120)).expect("flow completes");
    // 0–10 s at 2 Mb/s → 20 Mbit; 10–20 s frozen; 20–25 s at 0.6 Mb/s
    // → 3 Mbit; the last 7 Mbit at full rate → 3.5 s. Done at 28.5 s.
    assert!(
        (done.as_secs_f64() - 28.5).abs() < 1e-5,
        "expected completion at 28.5 s, got {done}"
    );
    assert_eq!(link.active_count(), 0);
    assert!(link.take_completed().is_some());
    assert_eq!(link.total_bytes_carried(), 3_750_000);
}

/// Freezing is exact: however finely the outage is chopped into advance
/// steps, a frozen flow loses nothing and the completion instant is
/// unchanged.
#[test]
fn chopped_outage_advances_lose_no_bytes() {
    let run = |chops: u64| {
        let mut link = SharedLink::new(CAP);
        link.start_flow(SimTime::ZERO, 500_000); // 4 Mbit → 2 s at full.
        link.set_rate_factor(secs(1), 0.0);
        for i in 1..=chops {
            link.advance(secs(1) + SimDuration::from_millis(i * 9_000 / chops));
        }
        link.set_rate_factor(secs(10), 1.0);
        link.next_completion(secs(10)).unwrap().0
    };
    let coarse = run(1);
    let fine = run(900);
    assert_eq!(coarse, fine, "chopping a frozen window changed completion");
    // 1 s transferred, 9 s frozen, 1 s remaining → done at 11 s.
    assert!((coarse.as_secs_f64() - 11.0).abs() < 1e-6);
}

/// A flow that both starts and ends inside a dip window sees exactly the
/// dipped rate, and a flow started during an outage stays queued at zero
/// progress until capacity returns.
#[test]
fn flows_born_under_faults_wait_their_turn() {
    let mut link = SharedLink::new(CAP);
    link.set_rate_factor(SimTime::ZERO, 0.0);
    link.start_flow(secs(2), 250_000); // 2 Mbit, born mid-outage.
    assert!(link.next_completion(secs(2)).is_none());
    link.advance(secs(8));
    assert_eq!(link.active_count(), 1);
    link.set_rate_factor(secs(9), 0.3); // outage ends into a dip
    let (done, _) = link.next_completion(secs(9)).unwrap();
    // 2 Mbit at 0.6 Mb/s from t = 9 s.
    assert!(
        (done.as_secs_f64() - (9.0 + 2.0 / 0.6)).abs() < 1e-5,
        "born-under-outage flow completed at {done}"
    );
}
