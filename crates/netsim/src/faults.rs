//! Link-fault model: outages, bandwidth dips, latency spikes.
//!
//! The paper's bench WaveLAN never misbehaves; a deployed one does. This
//! module describes the three failure modes that dominate wireless energy
//! bugs — complete outages (association loss, deep fades), bandwidth dips
//! (interference, contention from other cells), and media-access latency
//! spikes — as [`FaultPlan`] renewal processes, and compiles them into a
//! [`LinkFaultTimeline`] the machine executor consults while it drives the
//! [`crate::SharedLink`].
//!
//! Everything is drawn up front from a labelled [`SimRng`] stream, so a
//! fault run replays bit-identically from its seed.

use simcore::{FaultPlan, FaultSchedule, SimDuration, SimRng, SimTime};

/// Generative description of link faults, scaled by an intensity knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultPlan {
    /// Complete outages (capacity drops to zero).
    pub outage: Option<FaultPlan>,
    /// Bandwidth dips and the capacity factor that applies during one.
    pub dip: Option<(FaultPlan, f64)>,
    /// Latency spikes and the extra one-way latency during one.
    pub latency: Option<(FaultPlan, SimDuration)>,
}

impl LinkFaultPlan {
    /// A healthy link: no faults at all.
    pub fn clean() -> Self {
        LinkFaultPlan {
            outage: None,
            dip: None,
            latency: None,
        }
    }

    /// A WaveLAN-like fault mix scaled by `intensity` in `[0, 1]`.
    ///
    /// At intensity 1.0: ~8 s outages on a ~3 min cadence, ~20 s dips to
    /// 30% capacity on a ~90 s cadence, and ~10 s windows of +80 ms
    /// one-way latency on a ~2 min cadence. Intensity stretches the quiet
    /// gaps (not the fault lengths), so faults get rarer, not gentler, as
    /// intensity falls — matching how real links degrade. Intensity 0
    /// returns the clean plan.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]`.
    pub fn wavelan(intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "invalid intensity: {intensity}"
        );
        if intensity == 0.0 {
            return Self::clean();
        }
        let stretch = 1.0 / intensity;
        let gap = |base_s: f64| SimDuration::from_secs_f64(base_s * stretch);
        LinkFaultPlan {
            outage: Some(FaultPlan::new(gap(180.0), SimDuration::from_secs(8))),
            dip: Some((FaultPlan::new(gap(90.0), SimDuration::from_secs(20)), 0.3)),
            latency: Some((
                FaultPlan::new(gap(120.0), SimDuration::from_secs(10)),
                SimDuration::from_millis(80),
            )),
        }
    }

    /// True when no fault class is configured.
    pub fn is_clean(&self) -> bool {
        self.outage.is_none() && self.dip.is_none() && self.latency.is_none()
    }

    /// Compiles the plan into a concrete timeline over `[0, horizon)`.
    ///
    /// Each fault class draws from its own labelled fork of `rng`, so
    /// adding a class never perturbs the others' timelines.
    pub fn compile(&self, rng: &SimRng, horizon: SimTime) -> LinkFaultTimeline {
        let sched = |plan: &FaultPlan, label: &str| plan.schedule(&mut rng.fork(label), horizon);
        LinkFaultTimeline {
            outages: self
                .outage
                .as_ref()
                .map(|p| sched(p, "link.outage"))
                .unwrap_or_default(),
            dips: self
                .dip
                .as_ref()
                .map(|(p, _)| sched(p, "link.dip"))
                .unwrap_or_default(),
            dip_factor: self.dip.map(|(_, f)| f).unwrap_or(1.0),
            latency: self
                .latency
                .as_ref()
                .map(|(p, _)| sched(p, "link.latency"))
                .unwrap_or_default(),
            latency_extra: self.latency.map(|(_, d)| d).unwrap_or(SimDuration::ZERO),
        }
    }
}

/// A compiled, concrete link-fault timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkFaultTimeline {
    outages: FaultSchedule,
    dips: FaultSchedule,
    dip_factor: f64,
    latency: FaultSchedule,
    latency_extra: SimDuration,
}

impl LinkFaultTimeline {
    /// A timeline with no faults.
    pub fn clean() -> Self {
        LinkFaultTimeline {
            dip_factor: 1.0,
            ..Default::default()
        }
    }

    /// A hand-scripted timeline from explicit schedules — for tests and
    /// scenario replays that need exact windows (e.g. a dip overlapping
    /// an outage) rather than a generative plan.
    ///
    /// # Panics
    ///
    /// Panics unless `dip_factor` is finite and in `[0, 1]`.
    pub fn scripted(
        outages: FaultSchedule,
        dips: FaultSchedule,
        dip_factor: f64,
        latency: FaultSchedule,
        latency_extra: SimDuration,
    ) -> Self {
        assert!(
            dip_factor.is_finite() && (0.0..=1.0).contains(&dip_factor),
            "invalid dip factor: {dip_factor}"
        );
        LinkFaultTimeline {
            outages,
            dips,
            dip_factor,
            latency,
            latency_extra,
        }
    }

    /// Effective capacity factor at `t`: 0 during an outage, the dip
    /// factor during a dip, 1 otherwise. An outage wins over a dip.
    pub fn capacity_factor_at(&self, t: SimTime) -> f64 {
        if self.outages.active_at(t) {
            0.0
        } else if self.dips.active_at(t) {
            self.dip_factor
        } else {
            1.0
        }
    }

    /// Extra one-way media-access latency at `t`.
    pub fn extra_latency_at(&self, t: SimTime) -> SimDuration {
        if self.latency.active_at(t) {
            self.latency_extra
        } else {
            SimDuration::ZERO
        }
    }

    /// The next instant strictly after `t` at which the capacity factor
    /// may change — the machine schedules its fault event there.
    pub fn next_capacity_transition_after(&self, t: SimTime) -> Option<SimTime> {
        match (
            self.outages.next_transition_after(t),
            self.dips.next_transition_after(t),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when the timeline holds no fault windows at all.
    pub fn is_clean(&self) -> bool {
        self.outages.is_empty() && self.dips.is_empty() && self.latency.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_compiles_to_clean_timeline() {
        let t = LinkFaultPlan::clean().compile(&SimRng::new(1), SimTime::from_secs(1000));
        assert!(t.is_clean());
        assert_eq!(t.capacity_factor_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(t.extra_latency_at(SimTime::from_secs(5)), SimDuration::ZERO);
        assert_eq!(t.next_capacity_transition_after(SimTime::ZERO), None);
    }

    #[test]
    fn compile_is_deterministic() {
        let plan = LinkFaultPlan::wavelan(1.0);
        let a = plan.compile(&SimRng::new(9), SimTime::from_secs(3600));
        let b = plan.compile(&SimRng::new(9), SimTime::from_secs(3600));
        assert_eq!(a, b);
        assert!(!a.is_clean());
    }

    #[test]
    fn factors_layer_correctly() {
        let plan = LinkFaultPlan::wavelan(1.0);
        let t = plan.compile(&SimRng::new(4), SimTime::from_secs(7200));
        let mut saw_outage = false;
        let mut saw_dip = false;
        let mut at = SimTime::ZERO;
        while let Some(next) = t.next_capacity_transition_after(at) {
            let f = t.capacity_factor_at(next);
            assert!(
                f == 0.0 || f == 0.3 || f == 1.0,
                "unexpected capacity factor {f}"
            );
            saw_outage |= f == 0.0;
            saw_dip |= f == 0.3;
            at = next;
        }
        assert!(saw_outage, "two hours should include an outage");
        assert!(saw_dip, "two hours should include a dip");
    }

    #[test]
    fn intensity_scales_fault_density() {
        let horizon = SimTime::from_secs(100_000);
        let heavy = LinkFaultPlan::wavelan(1.0).compile(&SimRng::new(5), horizon);
        let light = LinkFaultPlan::wavelan(0.2).compile(&SimRng::new(5), horizon);
        let count = |t: &LinkFaultTimeline| {
            let mut n = 0;
            let mut at = SimTime::ZERO;
            while let Some(next) = t.next_capacity_transition_after(at) {
                n += 1;
                at = next;
            }
            n
        };
        assert!(
            count(&heavy) > 2 * count(&light),
            "intensity 1.0 ({}) should fault far more than 0.2 ({})",
            count(&heavy),
            count(&light)
        );
    }

    #[test]
    fn zero_intensity_is_clean() {
        assert!(LinkFaultPlan::wavelan(0.0).is_clean());
    }
}
