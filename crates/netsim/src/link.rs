//! Processor-sharing link model.
//!
//! All concurrently-active flows split the link capacity equally. The
//! model is exact (fluid approximation): between flow arrivals and
//! departures each flow drains at `capacity / n`, and the machine asks the
//! link for the next departure instant to schedule its completion event.
//!
//! Invariants maintained:
//! - bytes are conserved: a flow departs exactly when its bytes are done;
//! - `advance` is idempotent at a fixed instant;
//! - the earliest completion reported never precedes `now`.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime, TraceEvent, TraceHandle};

/// Identifies one flow on a link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

impl FlowId {
    /// The underlying flow number — snapshot support only; treat as
    /// opaque everywhere else.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`Self::raw`] — snapshot support only.
    pub fn from_raw(id: u64) -> Self {
        FlowId(id)
    }
}

#[derive(Clone, Debug)]
struct Flow {
    id: FlowId,
    remaining_bits: f64,
}

/// A shared link with equal-share (processor-sharing) bandwidth allocation.
///
/// # Examples
///
/// ```
/// use netsim::SharedLink;
/// use simcore::SimTime;
///
/// let mut link = SharedLink::new(2.0e6);
/// let t0 = SimTime::ZERO;
/// let f = link.start_flow(t0, 250_000); // 1 Mbit over a 2 Mb/s link
/// let (done, id) = link.next_completion(t0).unwrap();
/// assert_eq!(id, f);
/// assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct SharedLink {
    capacity_bps: f64,
    /// Multiplier on capacity for fault modelling: 1.0 is a healthy link,
    /// values in (0, 1) are bandwidth dips, 0.0 is a full outage (flows
    /// stall but are not lost).
    rate_factor: f64,
    flows: Vec<Flow>,
    completed: VecDeque<FlowId>,
    last_advance: SimTime,
    next_id: u64,
    total_bytes_carried: u64,
    trace: Option<TraceHandle>,
}

impl SharedLink {
    /// Creates a link with the given capacity in bits per second.
    ///
    /// # Panics
    ///
    /// Panics unless the capacity is positive and finite.
    pub fn new(capacity_bps: f64) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "invalid link capacity: {capacity_bps}"
        );
        SharedLink {
            capacity_bps,
            rate_factor: 1.0,
            flows: Vec::new(),
            completed: VecDeque::new(),
            last_advance: SimTime::ZERO,
            next_id: 0,
            total_bytes_carried: 0,
            trace: None,
        }
    }

    /// Attaches a simtrace handle: flow admissions/departures and rate
    /// transitions are emitted as typed events from now on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Link capacity, bits per second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Number of flows currently in progress.
    pub fn active_count(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes carried since creation (for utilization reporting).
    pub fn total_bytes_carried(&self) -> u64 {
        self.total_bytes_carried
    }

    /// Current capacity multiplier (see [`SharedLink::set_rate_factor`]).
    pub fn rate_factor(&self) -> f64 {
        self.rate_factor
    }

    /// Changes the link's effective capacity at `now` — the fault hook.
    ///
    /// The fluid model is advanced to `now` under the old factor first, so
    /// a fault transition never rewrites history. A factor of `0.0`
    /// freezes all in-flight flows (an outage); they resume, with their
    /// remaining bytes intact, when the factor becomes positive again.
    ///
    /// # Panics
    ///
    /// Panics unless the factor is finite and in `[0, 1]`.
    pub fn set_rate_factor(&mut self, now: SimTime, factor: f64) {
        assert!(
            factor.is_finite() && (0.0..=1.0).contains(&factor),
            "invalid rate factor: {factor}"
        );
        self.advance(now);
        self.rate_factor = factor;
        if let Some(tr) = &self.trace {
            tr.emit(
                now,
                TraceEvent::LinkRate {
                    factor,
                    active: self.flows.len() as u64,
                },
            );
        }
    }

    /// Advances the fluid model to `now`, draining every active flow at its
    /// current share. Flows that finish are moved to the completed queue in
    /// departure order.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last advance.
    pub fn advance(&mut self, now: SimTime) {
        // Flows may complete at different instants within [last, now];
        // process departures one at a time so later flows speed up after
        // each departure, as the fluid model requires.
        loop {
            let dt = now.since(self.last_advance).as_secs_f64();
            if self.flows.is_empty() || dt <= 0.0 || self.rate_factor == 0.0 {
                // An outage freezes every flow in place.
                self.last_advance = now;
                return;
            }
            let share = self.capacity_bps * self.rate_factor / self.flows.len() as f64;
            // Earliest internal departure among active flows.
            let min_remaining = self
                .flows
                .iter()
                .map(|f| f.remaining_bits)
                .fold(f64::INFINITY, f64::min);
            let t_depart = min_remaining / share;
            if t_depart > dt {
                // No departure before `now`: drain uniformly.
                for f in &mut self.flows {
                    f.remaining_bits -= share * dt;
                }
                self.last_advance = now;
                return;
            }
            // Drain to the departure instant, retire finished flows, loop.
            for f in &mut self.flows {
                f.remaining_bits -= share * t_depart;
            }
            self.last_advance += SimDuration::from_secs_f64(t_depart);
            let mut i = 0;
            while i < self.flows.len() {
                if self.flows[i].remaining_bits <= 1e-6 {
                    let f = self.flows.remove(i);
                    if let Some(tr) = &self.trace {
                        tr.emit(self.last_advance, TraceEvent::FlowDone { flow: f.id.0 });
                    }
                    self.completed.push_back(f.id);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Starts a new flow of `bytes` at `now` (advancing the model first).
    /// Zero-byte flows complete immediately.
    pub fn start_flow(&mut self, now: SimTime, bytes: u64) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.total_bytes_carried += bytes;
        if let Some(tr) = &self.trace {
            tr.emit(now, TraceEvent::FlowStart { flow: id.0, bytes });
        }
        if bytes == 0 {
            if let Some(tr) = &self.trace {
                tr.emit(now, TraceEvent::FlowDone { flow: id.0 });
            }
            self.completed.push_back(id);
        } else {
            self.flows.push(Flow {
                id,
                remaining_bits: bytes as f64 * 8.0,
            });
        }
        id
    }

    /// Pops the next completed flow, in departure order.
    pub fn take_completed(&mut self) -> Option<FlowId> {
        self.completed.pop_front()
    }

    /// The instant the next active flow will complete if no flows start or
    /// stop in the meantime, assuming the model is advanced to `now`.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, FlowId)> {
        debug_assert_eq!(self.last_advance, now, "advance the link to `now` first");
        if self.flows.is_empty() || self.rate_factor == 0.0 {
            // During an outage no completion is in sight; the fault hook
            // re-arms the machine's link event when capacity returns.
            return None;
        }
        let share = self.capacity_bps * self.rate_factor / self.flows.len() as f64;
        let f = self
            .flows
            .iter()
            .min_by(|a, b| a.remaining_bits.total_cmp(&b.remaining_bits))?;
        let dt = SimDuration::from_secs_f64((f.remaining_bits / share).max(0.0));
        Some((now + dt.max(SimDuration::from_micros(1)), f.id))
    }

    /// Cancels an in-progress flow (e.g. the workload was aborted).
    /// Returns `true` if the flow was active.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let before = self.flows.len();
        self.flows.retain(|f| f.id != id);
        self.flows.len() != before
    }

    /// Encodes the link's mutable state (everything except capacity and
    /// the trace attachment) into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_f64(self.rate_factor);
        w.put_usize(self.flows.len());
        for f in &self.flows {
            w.put_u64(f.id.0);
            w.put_f64(f.remaining_bits);
        }
        w.put_usize(self.completed.len());
        for id in &self.completed {
            w.put_u64(id.0);
        }
        w.put_time(self.last_advance);
        w.put_u64(self.next_id);
        w.put_u64(self.total_bytes_carried);
    }

    /// Restores the mutable state written by [`Self::freeze_into`] onto
    /// this (freshly built) link. Capacity and trace attachment are
    /// construction-time properties and keep their current values.
    pub fn thaw_from(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        let rate_factor = r.take_f64()?;
        if !rate_factor.is_finite() || !(0.0..=1.0).contains(&rate_factor) {
            return Err(simcore::SnapshotError::Corrupt("link rate factor"));
        }
        let n_flows = r.take_usize()?;
        let mut flows = Vec::with_capacity(n_flows.min(1024));
        for _ in 0..n_flows {
            let id = FlowId(r.take_u64()?);
            let remaining_bits = r.take_f64()?;
            if !remaining_bits.is_finite() || remaining_bits < 0.0 {
                return Err(simcore::SnapshotError::Corrupt("flow remaining bits"));
            }
            flows.push(Flow { id, remaining_bits });
        }
        let n_done = r.take_usize()?;
        let mut completed = VecDeque::with_capacity(n_done.min(1024));
        for _ in 0..n_done {
            completed.push_back(FlowId(r.take_u64()?));
        }
        let last_advance = r.take_time()?;
        let next_id = r.take_u64()?;
        if flows.iter().any(|f| f.id.0 >= next_id) || completed.iter().any(|id| id.0 >= next_id) {
            return Err(simcore::SnapshotError::Corrupt("flow id beyond next_id"));
        }
        let total_bytes_carried = r.take_u64()?;
        self.rate_factor = rate_factor;
        self.flows = flows;
        self.completed = completed;
        self.last_advance = last_advance;
        self.next_id = next_id;
        self.total_bytes_carried = total_bytes_carried;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: f64 = 2.0e6;

    #[test]
    fn single_flow_takes_bytes_over_capacity() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        link.start_flow(t0, 500_000); // 4 Mbit → 2 s.
        let (done, _) = link.next_completion(t0).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
        link.advance(done);
        assert!(link.take_completed().is_some());
        assert_eq!(link.active_count(), 0);
    }

    #[test]
    fn two_flows_share_bandwidth() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        // Equal flows started together: each gets 1 Mb/s, so a 1 Mbit flow
        // takes 1 s instead of 0.5 s.
        let a = link.start_flow(t0, 125_000);
        let _b = link.start_flow(t0, 125_000);
        let (done, first) = link.next_completion(t0).unwrap();
        assert_eq!(first, a, "earlier flow wins the tie by id order");
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn survivor_speeds_up_after_departure() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        link.start_flow(t0, 125_000); // 1 Mbit.
        link.start_flow(t0, 250_000); // 2 Mbit.
                                      // Shared until t=1 s (first departs having used 1 Mb/s); the second
                                      // then has 1 Mbit left at full 2 Mb/s → done at t=1.5 s.
        let end = SimTime::from_secs_f64(3.0);
        link.advance(end);
        let mut order = Vec::new();
        while let Some(f) = link.take_completed() {
            order.push(f);
        }
        assert_eq!(order.len(), 2);
        // Verify the departure instant of the second flow via incremental
        // advances.
        let mut link = SharedLink::new(CAP);
        link.start_flow(t0, 125_000);
        let b = link.start_flow(t0, 250_000);
        link.advance(SimTime::from_secs_f64(1.0));
        let _ = link.take_completed();
        let (done_b, id_b) = link.next_completion(SimTime::from_secs_f64(1.0)).unwrap();
        assert_eq!(id_b, b);
        assert!((done_b.as_secs_f64() - 1.5).abs() < 1e-5);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        let a = link.start_flow(t0, 250_000); // 2 Mbit → alone: 1 s.
        let t_half = SimTime::from_secs_f64(0.5);
        link.start_flow(t_half, 250_000);
        // A has 1 Mbit left, now at 1 Mb/s → completes at t = 1.5 s.
        let (done, id) = link.next_completion(t_half).unwrap();
        assert_eq!(id, a);
        assert!((done.as_secs_f64() - 1.5).abs() < 1e-5);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = SharedLink::new(CAP);
        let f = link.start_flow(SimTime::ZERO, 0);
        assert_eq!(link.take_completed(), Some(f));
        assert_eq!(link.active_count(), 0);
    }

    #[test]
    fn cancel_removes_flow() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        let f = link.start_flow(t0, 1_000_000);
        assert!(link.cancel_flow(SimTime::from_secs_f64(0.1), f));
        assert!(!link.cancel_flow(SimTime::from_secs_f64(0.2), f));
        assert_eq!(link.active_count(), 0);
        assert!(link.next_completion(SimTime::from_secs_f64(0.2)).is_none());
    }

    #[test]
    fn bytes_are_conserved_across_many_interleavings() {
        // Fluid-model conservation: total transfer time of equal flows
        // started together equals sequential time regardless of sharing.
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        for _ in 0..8 {
            link.start_flow(t0, 125_000);
        }
        // 8 Mbit total at 2 Mb/s → all done at t = 4 s.
        link.advance(SimTime::from_secs_f64(4.0 + 1e-6));
        let mut n = 0;
        while link.take_completed().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
        assert_eq!(link.active_count(), 0);
        assert_eq!(link.total_bytes_carried(), 8 * 125_000);
    }

    #[test]
    fn advance_is_idempotent_at_fixed_instant() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        link.start_flow(t0, 250_000);
        let t = SimTime::from_secs_f64(0.25);
        link.advance(t);
        let c1 = link.next_completion(t).unwrap().0;
        link.advance(t);
        let c2 = link.next_completion(t).unwrap().0;
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "invalid link capacity")]
    fn zero_capacity_rejected() {
        let _ = SharedLink::new(0.0);
    }

    #[test]
    fn outage_freezes_flows_and_preserves_bytes() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        link.start_flow(t0, 250_000); // 2 Mbit → 1 s alone.
                                      // Outage from 0.5 s to 2.5 s: the flow pauses halfway.
        link.set_rate_factor(SimTime::from_secs_f64(0.5), 0.0);
        assert!(link.next_completion(SimTime::from_secs_f64(0.5)).is_none());
        link.advance(SimTime::from_secs_f64(2.5));
        assert_eq!(link.active_count(), 1, "flow survives the outage");
        link.set_rate_factor(SimTime::from_secs_f64(2.5), 1.0);
        let (done, _) = link.next_completion(SimTime::from_secs_f64(2.5)).unwrap();
        assert!(
            (done.as_secs_f64() - 3.0).abs() < 1e-6,
            "remaining 1 Mbit takes the remaining 0.5 s: done at {done}"
        );
    }

    #[test]
    fn bandwidth_dip_slows_flows() {
        let mut link = SharedLink::new(CAP);
        let t0 = SimTime::ZERO;
        link.set_rate_factor(t0, 0.25); // 500 kb/s effective.
        link.start_flow(t0, 125_000); // 1 Mbit → 2 s at quarter rate.
        let (done, _) = link.next_completion(t0).unwrap();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid rate factor")]
    fn rate_factor_above_one_rejected() {
        let mut link = SharedLink::new(CAP);
        link.set_rate_factor(SimTime::ZERO, 1.5);
    }

    #[test]
    fn trace_records_flow_lifecycle_and_rate_changes() {
        use simcore::{TraceHandle, TraceSink};
        let trace = TraceHandle::new(TraceSink::new());
        let mut link = SharedLink::new(CAP);
        link.set_trace(trace.clone());
        let t0 = SimTime::ZERO;
        link.start_flow(t0, 250_000); // 2 Mbit → 1 s alone.
        link.set_rate_factor(SimTime::from_secs_f64(0.5), 0.5);
        link.advance(SimTime::from_secs_f64(5.0));
        let tags: Vec<&str> = trace.records().iter().map(|r| r.event.tag()).collect();
        assert_eq!(tags, ["flow_start", "link_rate", "flow_done"]);
        // The departure is timestamped at the fluid-model instant, not
        // the advance() call instant.
        let done = trace.records()[2].at;
        assert!((done.as_secs_f64() - 1.5).abs() < 1e-5, "departed {done}");
    }
}
