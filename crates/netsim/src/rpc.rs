//! RPC timing composition.
//!
//! Odyssey's client/server traffic is RPC2-style: a request travels to the
//! server, the server works for a residence time, and the reply travels
//! back. The radio must stay awake for the whole window (Section 3.2's
//! standby policy is "except during remote procedure calls or bulk
//! transfers"), which is why waiting on a slow server costs idle-radio
//! energy — the effect dominating the remote speech bars in Figure 8.
//!
//! This module only describes an RPC; the `machine` crate executes it
//! (request flow → server timer → reply flow) against the shared link.

use simcore::SimDuration;

/// Shape of one remote procedure call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcSpec {
    /// Request payload, bytes.
    pub request_bytes: u64,
    /// Reply payload, bytes.
    pub reply_bytes: u64,
    /// Server residence time between request arrival and reply departure.
    pub server_time: SimDuration,
}

impl RpcSpec {
    /// A small control RPC: both payloads fit in one packet.
    pub fn control(server_time: SimDuration) -> Self {
        RpcSpec {
            request_bytes: 256,
            reply_bytes: 256,
            server_time,
        }
    }

    /// Lower bound on the wall-clock duration of this RPC on an otherwise
    /// idle link of `capacity_bps`, including both media-access latencies.
    ///
    /// The machine's actual timing can be longer under link contention;
    /// tests use this bound to check the executor never beats physics.
    pub fn min_duration(&self, capacity_bps: f64, latency: SimDuration) -> SimDuration {
        let tx = SimDuration::from_secs_f64(self.request_bytes as f64 * 8.0 / capacity_bps);
        let rx = SimDuration::from_secs_f64(self.reply_bytes as f64 * 8.0 / capacity_bps);
        latency + tx + self.server_time + latency + rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_duration_adds_all_legs() {
        let rpc = RpcSpec {
            request_bytes: 25_000, // 0.1 s at 2 Mb/s.
            reply_bytes: 50_000,   // 0.2 s.
            server_time: SimDuration::from_millis(300),
        };
        let d = rpc.min_duration(2.0e6, SimDuration::from_millis(5));
        assert!((d.as_secs_f64() - (0.005 + 0.1 + 0.3 + 0.005 + 0.2)).abs() < 1e-9);
    }

    #[test]
    fn control_rpc_is_small() {
        let rpc = RpcSpec::control(SimDuration::from_millis(10));
        assert!(rpc.request_bytes <= 1500 && rpc.reply_bytes <= 1500);
    }
}
