#![forbid(unsafe_code)]
//! Wireless network model.
//!
//! The paper's client communicates with its servers over a 2 Mb/s WaveLAN
//! operating at 900 MHz; video playback is explicitly bandwidth-limited by
//! it ("not enough video data is transmitted to saturate the processor"),
//! and concurrent applications (Section 3.7) share it. This crate models
//! the link as a processor-sharing server: each active flow receives an
//! equal share of the capacity, recomputed whenever flows start or finish.
//! RPC timing (request → server residence → reply) composes on top.

pub mod faults;
pub mod link;
pub mod rpc;

pub use faults::{LinkFaultPlan, LinkFaultTimeline};
pub use link::{FlowId, SharedLink};
pub use rpc::RpcSpec;

/// The paper's WaveLAN capacity: 2 Mb/s.
pub const WAVELAN_CAPACITY_BPS: f64 = 2.0e6;

/// One-way media-access latency per RPC leg (carrier acquisition, headers).
pub const RPC_LATENCY: simcore::SimDuration = simcore::SimDuration::from_millis(5);
